package regalloc

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/sim/functional"
	"repro/internal/trips"
)

func compile(t *testing.T, src string) *ir.Program {
	t.Helper()
	p, err := lang.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

const simpleSrc = `
func main(a, b) {
  var s = a + b;
  var d = a - b;
  if (s > d) { return s * d; }
  return s + d;
}`

func TestAllocateSimple(t *testing.T) {
	p := compile(t, simpleSrc)
	f := p.Func("main")
	asn, err := Allocate(f, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(asn.Spilled) != 0 {
		t.Fatalf("unexpected spills: %v", asn.Spilled)
	}
	// Params precolored.
	if asn.Phys[f.Params[0]] != 0 || asn.Phys[f.Params[1]] != 1 {
		t.Fatalf("params not precolored: %v", asn.Phys)
	}
	// No two overlapping registers share a physical register: weak
	// check — distinct regs live simultaneously through the whole
	// function is hard to assert directly, so instead verify
	// execution still works (spill-free allocation does not modify
	// the function).
	v, _, _, err := functional.RunProgram(p, "main", 10, 3)
	if err != nil || v != 91 {
		t.Fatalf("main(10,3) = %d, %v", v, err)
	}
}

func TestAllocationAssignsAllRegs(t *testing.T) {
	p := compile(t, simpleSrc)
	f := p.Func("main")
	asn, err := Allocate(f, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Every register used by any instruction must be mapped.
	var buf []ir.Reg
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			buf = in.Uses(buf)
			for _, r := range buf {
				if _, ok := asn.Phys[r]; !ok {
					t.Fatalf("register %s unmapped", r)
				}
			}
			if d := in.Def(); d.Valid() {
				if _, ok := asn.Phys[d]; !ok {
					t.Fatalf("def %s unmapped", d)
				}
			}
		}
	}
}

func TestBankBalancing(t *testing.T) {
	// Many simultaneously-live registers: bank usage should spread.
	src := `
func main(n) {
  var a = n + 1; var b = n + 2; var c = n + 3; var d = n + 4;
  var e = n + 5; var f = n + 6; var g = n + 7; var h = n + 8;
  return a*b + c*d + e*f + g*h + a*h;
}`
	p := compile(t, src)
	f := p.Func("main")
	asn, err := Allocate(f, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	banks := map[int]int{}
	for _, ph := range asn.Phys {
		banks[ph%4]++
	}
	if len(banks) < 3 {
		t.Fatalf("bank usage too skewed: %v", banks)
	}
}

// spillSrc keeps ~40 values live at once under a tiny register file.
const spillSrc = `
func main(n) {
  var a0 = n + 0; var a1 = n + 1; var a2 = n + 2; var a3 = n + 3;
  var a4 = n + 4; var a5 = n + 5; var a6 = n + 6; var a7 = n + 7;
  var a8 = n + 8; var a9 = n + 9; var b0 = n * 2; var b1 = n * 3;
  var b2 = n * 4; var b3 = n * 5; var b4 = n * 6; var b5 = n * 7;
  return a0+a1+a2+a3+a4+a5+a6+a7+a8+a9+b0+b1+b2+b3+b4+b5;
}`

func TestSpilling(t *testing.T) {
	p := compile(t, spillSrc)
	want, _, _, err := functional.RunProgram(ir.CloneProgram(p), "main", 7)
	if err != nil {
		t.Fatal(err)
	}
	f := p.Func("main")
	asn, err := Allocate(f, p, Options{NumRegs: 8, Banks: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(asn.Spilled) == 0 {
		t.Fatal("expected spills under an 8-register file")
	}
	if err := ir.Verify(f); err != nil {
		t.Fatalf("spill code broke verification: %v", err)
	}
	got, _, _, err := functional.RunProgram(p, "main", 7)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("spilled program computes %d, want %d", got, want)
	}
}

func TestRecursiveSpillRejected(t *testing.T) {
	src := `
func main(n) {
  if (n < 2) { return n; }
  var a0 = n + 0; var a1 = n + 1; var a2 = n + 2; var a3 = n + 3;
  var a4 = n + 4; var a5 = n + 5; var a6 = n + 6; var a7 = n + 7;
  var r = main(n - 1);
  return a0+a1+a2+a3+a4+a5+a6+a7+r;
}`
	p := compile(t, src)
	f := p.Func("main")
	_, err := Allocate(f, p, Options{NumRegs: 6, Banks: 2})
	if err == nil || !strings.Contains(err.Error(), "recursive") {
		t.Fatalf("want recursion rejection, got %v", err)
	}
}

func TestSplitBlock(t *testing.T) {
	p := compile(t, simpleSrc)
	f := p.Func("main")
	entry := f.Entry()
	n := len(entry.Instrs)
	if !splitBlock(f, entry) {
		t.Fatal("splitBlock failed")
	}
	if err := ir.Verify(f); err != nil {
		t.Fatalf("split broke verification: %v", err)
	}
	if len(entry.Instrs) >= n {
		t.Fatal("split did not shrink the block")
	}
	v, _, _, err := functional.RunProgram(p, "main", 10, 3)
	if err != nil || v != 91 {
		t.Fatalf("after split main(10,3) = %d, %v", v, err)
	}
}

func TestReverseIfConversionLoop(t *testing.T) {
	// Form big hyperblocks, then allocate with a tiny register file
	// so spill code forces block splitting.
	src := `
array m[64];
func main(n) {
  for (var i = 0; i < 64; i = i + 1) { m[i] = i; }
  var s = 0;
  for (var j = 0; j < n; j = j + 1) {
    var v = m[j % 64];
    if (v > 31) { s = s + v * 2; } else { s = s - v; }
  }
  print(s);
  return s;
}`
	p := compile(t, src)
	want, wantOut, _, err := functional.RunProgram(ir.CloneProgram(p), "main", 100)
	if err != nil {
		t.Fatal(err)
	}
	core.FormProgram(p, core.Config{Cons: trips.Default(), IterOpt: true, HeadDup: true}, nil)
	f := p.Func("main")
	asn, err := Allocate(f, p, Options{NumRegs: 32, Banks: 4,
		Cons: trips.Constraints{MaxInstrs: 64, MaxMemOps: 16, RegBanks: 4,
			MaxReadsPerBank: 8, MaxWritesPerBank: 8}})
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if err := ir.Verify(f); err != nil {
		t.Fatal(err)
	}
	got, gotOut, _, err := functional.RunProgram(p, "main", 100)
	if err != nil {
		t.Fatal(err)
	}
	if got != want || len(gotOut) != len(wantOut) || gotOut[0] != wantOut[0] {
		t.Fatalf("semantics broken: %d vs %d", got, want)
	}
	t.Logf("rounds=%d splits=%d spills=%d", asn.Rounds, asn.Splits, len(asn.Spilled))
}

func TestAllocateProgram(t *testing.T) {
	src := `
func helper(x) { return x * 2; }
func main(n) { return helper(n) + 1; }`
	p := compile(t, src)
	asns, errs := AllocateProgram(p, Options{})
	if len(errs) != 0 {
		t.Fatalf("errors: %v", errs)
	}
	if len(asns) != 2 {
		t.Fatalf("want 2 assignments, got %d", len(asns))
	}
}

func TestBankConstraintViolationDetected(t *testing.T) {
	// Force every register into bank 0 with Banks=1... instead build
	// an artificial assignment hitting the per-bank read limit.
	f := ir.NewFunction("f", 10)
	b := f.NewBlock("entry")
	bd := ir.NewBuilder(f, b)
	acc := f.Params[0]
	for i := 1; i < 10; i++ {
		acc = bd.Bin(ir.OpAdd, acc, f.Params[i])
	}
	bd.Ret(acc)
	// All 10 params read in one block; map them all to bank 0.
	phys := map[ir.Reg]int{}
	for i, p := range f.Params {
		phys[p] = i * 4 // bank 0 under Banks=4
	}
	next := 100
	for _, blk := range f.Blocks {
		for _, in := range blk.Instrs {
			if d := in.Def(); d.Valid() {
				if _, ok := phys[d]; !ok {
					phys[d] = next
					next += 4
				}
			}
		}
	}
	opts := Options{}.withDefaults()
	if v := findViolatingBlock(f, phys, opts); v == nil {
		t.Fatal("bank overflow not detected")
	}
}
