// Package regalloc maps virtual registers onto the TRIPS
// architectural register file: 128 registers in 4 banks, with at most
// 8 reads and 8 writes per bank per block. It implements:
//
//   - live-interval construction over a linearized block order;
//   - linear-scan assignment with bank-balancing (round-robin bank
//     preference) and furthest-end spilling;
//   - spill code insertion (loads before uses, stores after
//     definitions) into a per-function spill area;
//   - post-allocation validation of the per-block bank constraints;
//   - reverse if-conversion (block splitting, the paper's §6): when
//     spill code pushes a block over the structural limits, the block
//     is split and allocation repeats.
//
// Functions that both recurse and need spill slots are rejected (the
// static spill area is not reentrant); the driver leaves such
// functions on virtual registers and reports it.
package regalloc

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/analysis"
	"repro/internal/ir"
	"repro/internal/trips"
)

// Assignment is the result of allocating one function.
type Assignment struct {
	// Phys maps each virtual register to an architectural register
	// number in [0, NumRegs); spilled registers are absent.
	Phys map[ir.Reg]int
	// Spilled maps spilled virtual registers to spill-slot indices.
	Spilled map[ir.Reg]int
	// SpillBase is the memory address of the function's spill area
	// (meaningful when Spills > 0).
	SpillBase int64
	// Splits counts reverse-if-conversion block splits performed.
	Splits int
	// Rounds counts allocation attempts.
	Rounds int
	// Violations lists residual per-block constraint violations that
	// block splitting could not repair (splitting increases
	// cross-block communication, so some violations are
	// unsplittable; the paper's §9 discusses smarter splitting as
	// future work). Semantics are unaffected.
	Violations []error
}

// Options configure the allocator.
type Options struct {
	// NumRegs is the architectural register count (default 128).
	NumRegs int
	// Banks is the number of register banks (default 4); register r
	// lives in bank r % Banks.
	Banks int
	// Cons are the block constraints used for the re-check after
	// spilling (default trips.Default()).
	Cons trips.Constraints
	// MaxRounds bounds the allocate/split loop (default 8).
	MaxRounds int
}

func (o Options) withDefaults() Options {
	if o.NumRegs == 0 {
		o.NumRegs = 128
	}
	if o.Banks == 0 {
		o.Banks = 4
	}
	if o.Cons.MaxInstrs == 0 {
		o.Cons = trips.Default()
	}
	if o.MaxRounds == 0 {
		o.MaxRounds = 32
	}
	return o
}

// interval is a live range in linearized position space.
type interval struct {
	reg        ir.Reg
	start, end int
	isParam    bool
	paramIdx   int
}

// Allocate assigns architectural registers to f, inserting spill code
// and splitting blocks as needed. The function is modified in place.
// prog is needed to reserve spill memory; it may be nil when the
// function is known to fit without spills (allocation then fails if a
// spill is required).
func Allocate(f *ir.Function, prog *ir.Program, opts Options) (*Assignment, error) {
	opts = opts.withDefaults()
	asn := &Assignment{Phys: map[ir.Reg]int{}, Spilled: map[ir.Reg]int{}}

	// Registers minted by spill insertion must never be spilled
	// themselves (their reload/store chains would grow unboundedly).
	noSpillFrom := ir.Reg(f.NumRegs())

	// One analysis cache for the whole allocate/split loop: the
	// linear scan itself never mutates f, so the post-allocation
	// constraint check reuses the liveness computed for interval
	// construction.
	var cache analysis.Cache

	for round := 0; round < opts.MaxRounds; round++ {
		asn.Rounds = round + 1
		phys, spills, err := tryAllocate(f, opts, noSpillFrom, &cache)
		if err != nil {
			return nil, err
		}
		if len(spills) > 0 {
			if prog == nil {
				return nil, fmt.Errorf("regalloc: %s needs %d spill slots but no program for spill memory", f.Name, len(spills))
			}
			if isRecursive(f) {
				return nil, fmt.Errorf("regalloc: %s is recursive and needs spills; static spill area is not reentrant", f.Name)
			}
			base := asn.SpillBase
			if len(asn.Spilled) == 0 {
				base = prog.AddGlobal(fmt.Sprintf("__spill_%s_%d", f.Name, round), int64(len(spills)))
				asn.SpillBase = base
			} else {
				// Extend the spill area.
				base = prog.AddGlobal(fmt.Sprintf("__spill_%s_%d", f.Name, round), int64(len(spills)))
			}
			slotBase := len(asn.Spilled)
			for i, r := range spills {
				asn.Spilled[r] = slotBase + i
			}
			insertSpillCode(f, spills, base)
			continue // re-run allocation with spill code in place
		}
		asn.Phys = phys
		// Check per-block structural constraints post-allocation;
		// split every violating block (reverse if-conversion) and
		// retry.
		split := 0
		asn.Violations = asn.Violations[:0]
		lv := cache.Liveness(f)
		for _, b := range f.Blocks {
			err := blockViolation(b, lv, phys, opts)
			if err == nil {
				continue
			}
			if splitBlock(f, b) {
				split++
			} else {
				asn.Violations = append(asn.Violations, err)
			}
		}
		if split == 0 {
			return asn, nil
		}
		asn.Splits += split
	}
	return nil, fmt.Errorf("regalloc: %s did not converge in %d rounds", f.Name, opts.MaxRounds)
}

// tryAllocate runs one linear-scan pass. It returns the assignment,
// or the list of virtual registers to spill when pressure exceeds the
// register file.
func tryAllocate(f *ir.Function, opts Options, noSpillFrom ir.Reg, cache *analysis.Cache) (map[ir.Reg]int, []ir.Reg, error) {
	ivals := buildIntervals(f, cache)
	sort.Slice(ivals, func(i, j int) bool {
		if ivals[i].start != ivals[j].start {
			return ivals[i].start < ivals[j].start
		}
		return ivals[i].reg < ivals[j].reg
	})

	// The scan works on a register-indexed slice (-1 = unassigned);
	// the map the caller stores is materialized only on success.
	physS := make([]int32, f.NumRegs())
	for i := range physS {
		physS[i] = -1
	}
	free := make([]bool, opts.NumRegs)
	for i := range free {
		free[i] = true
	}
	// Params are precolored to registers 0..n-1 by convention.
	type active struct {
		end     int
		reg     ir.Reg
		ph      int
		isParam bool
	}
	var act []active
	var spills []ir.Reg
	nextBank := 0

	expire := func(pos int) {
		kept := act[:0]
		for _, a := range act {
			if a.end >= pos {
				kept = append(kept, a)
			} else {
				free[a.ph] = true
			}
		}
		act = kept
	}
	pick := func() int {
		// Prefer the next bank in rotation to balance bank usage.
		for off := 0; off < opts.Banks; off++ {
			bank := (nextBank + off) % opts.Banks
			for r := bank; r < opts.NumRegs; r += opts.Banks {
				if free[r] {
					nextBank = (bank + 1) % opts.Banks
					return r
				}
			}
		}
		return -1
	}

	for _, iv := range ivals {
		expire(iv.start)
		var ph int
		if iv.isParam {
			ph = iv.paramIdx
			if ph >= opts.NumRegs {
				return nil, nil, fmt.Errorf("regalloc: too many parameters")
			}
			if !free[ph] {
				return nil, nil, fmt.Errorf("regalloc: parameter register %d unavailable", ph)
			}
		} else {
			ph = pick()
		}
		for ph < 0 {
			// Spill active intervals (furthest end first) until a
			// register frees up; fall back to spilling the current
			// interval when nothing else is spillable.
			fi, fend := -1, iv.end
			for i, a := range act {
				if a.end > fend && !a.isParam && a.reg < noSpillFrom {
					fi, fend = i, a.end
				}
			}
			if fi < 0 {
				break
			}
			spills = append(spills, act[fi].reg)
			free[act[fi].ph] = true
			physS[act[fi].reg] = -1
			act = append(act[:fi], act[fi+1:]...)
			ph = pick()
		}
		if ph < 0 {
			if iv.reg >= noSpillFrom {
				return nil, nil, fmt.Errorf("regalloc: register file too small for spill machinery in %s", f.Name)
			}
			spills = append(spills, iv.reg)
			continue
		}
		free[ph] = false
		physS[iv.reg] = int32(ph)
		act = append(act, active{end: iv.end, reg: iv.reg, ph: ph, isParam: iv.isParam})
	}
	if len(spills) > 0 {
		return nil, spills, nil
	}
	phys := make(map[ir.Reg]int, len(ivals))
	for r, ph := range physS {
		if ph >= 0 {
			phys[ir.Reg(r)] = int(ph)
		}
	}
	return phys, nil, nil
}

// buildIntervals computes one conservative live interval per virtual
// register over the linearized function (RPO block order). Liveness
// across blocks extends intervals to cover every block where the
// register is live.
func buildIntervals(f *ir.Function, cache *analysis.Cache) []interval {
	order := cache.RPO(f)
	lv := cache.Liveness(f)

	// Linear positions: blocks laid out in RPO, two positions per
	// instruction (use side, def side).
	blockStart := make([]int, f.BlockIDBound())
	pos := 0
	for _, b := range order {
		blockStart[b.ID] = pos
		pos += 2*len(b.Instrs) + 2
	}
	totalEnd := pos

	// Register-indexed first/last positions; startS -1 marks a
	// register never touched.
	nregs := f.NumRegs()
	startS := make([]int, nregs)
	endS := make([]int, nregs)
	for i := range startS {
		startS[i] = -1
		endS[i] = -1
	}
	touch := func(r ir.Reg, p int) {
		if !r.Valid() {
			return
		}
		if startS[r] < 0 || p < startS[r] {
			startS[r] = p
		}
		if p > endS[r] {
			endS[r] = p
		}
	}
	var buf []ir.Reg
	for _, b := range order {
		bs := blockStart[b.ID]
		// Live-in/out registers cover the whole block.
		buf = lv.In[b].AppendMembers(buf[:0])
		for _, r := range buf {
			touch(r, bs)
		}
		buf = lv.Out[b].AppendMembers(buf[:0])
		for _, r := range buf {
			touch(r, bs+2*len(b.Instrs)+1)
		}
		for i, in := range b.Instrs {
			buf = in.Uses(buf)
			for _, r := range buf {
				touch(r, bs+2*i)
			}
			if d := in.Def(); d.Valid() {
				touch(d, bs+2*i+1)
			}
		}
	}
	// Loop-carried values must span their whole loop: a register live
	// into a loop header is extended to the end of the loop's last
	// block in linear order.
	loops := cache.Loops(f)
	for _, b := range order {
		l := loops.InnermostLoop(b)
		if l == nil {
			continue
		}
		loopEnd := 0
		for lb := range l.Blocks {
			if e := blockStart[lb.ID] + 2*len(lb.Instrs) + 1; e > loopEnd {
				loopEnd = e
			}
		}
		buf = lv.In[l.Header].AppendMembers(buf[:0])
		for _, r := range buf {
			if endS[r] < loopEnd {
				endS[r] = loopEnd
			}
		}
	}

	// Params are live from function entry.
	for _, p := range f.Params {
		touch(p, 0)
	}
	out := make([]interval, 0, nregs)
	for r := 0; r < nregs; r++ {
		if startS[r] < 0 {
			continue
		}
		iv := interval{reg: ir.Reg(r), start: startS[r], end: endS[r]}
		for pi, p := range f.Params {
			if p == ir.Reg(r) {
				iv.isParam = true
				iv.paramIdx = pi
				iv.start = 0
				break
			}
		}
		if iv.end > totalEnd {
			iv.end = totalEnd
		}
		out = append(out, iv)
	}
	return out
}

// insertSpillCode rewrites every use of each spilled register to load
// from its slot (an unpredicated reload — spill slots are always
// addressable) and every definition to store to it (predicated like
// the definition, so untaken paths do not clobber the slot), using
// fresh temporary virtual registers.
func insertSpillCode(f *ir.Function, spills []ir.Reg, base int64) {
	// Register-indexed slot table (-1 = not spilled). Sized before any
	// temp registers are minted below; temps never appear as operands
	// of the pre-existing instructions being rewritten.
	slot := make([]int64, f.NumRegs())
	for i := range slot {
		slot[i] = -1
	}
	for i, r := range spills {
		slot[r] = base + int64(i)
	}
	for _, b := range f.Blocks {
		out := make([]*ir.Instr, 0, len(b.Instrs)+8)
		// A fresh address register per access keeps spill-machinery
		// live ranges minimal (one instruction), so spill code can
		// always be register-allocated.
		zeroReg := func() ir.Reg {
			z := f.NewReg()
			out = append(out, &ir.Instr{Op: ir.OpConst, Dst: z,
				A: ir.NoReg, B: ir.NoReg, Pred: ir.NoReg, Imm: 0})
			return z
		}
		for _, in := range b.Instrs {
			reload := func(r ir.Reg) ir.Reg {
				off := slot[r]
				if off < 0 {
					return r
				}
				t := f.NewReg()
				out = append(out, &ir.Instr{Op: ir.OpLoad, Dst: t, A: zeroReg(),
					B: ir.NoReg, Pred: ir.NoReg, Imm: off})
				return t
			}
			if in.A.Valid() {
				in.A = reload(in.A)
			}
			if in.B.Valid() {
				in.B = reload(in.B)
			}
			if in.Pred.Valid() {
				in.Pred = reload(in.Pred)
			}
			for ai, a := range in.Args {
				in.Args[ai] = reload(a)
			}
			if d := in.Def(); d.Valid() {
				if off := slot[d]; off >= 0 {
					t := f.NewReg()
					if in.Predicated() {
						// Read-modify-write: preload the slot's old
						// value so the temp has an unpredicated
						// definition (bounding its live range) and
						// the write-back can be unconditional.
						out = append(out, &ir.Instr{Op: ir.OpLoad, Dst: t,
							A: zeroReg(), B: ir.NoReg, Pred: ir.NoReg, Imm: off})
					}
					in.Dst = t
					out = append(out, in)
					out = append(out, &ir.Instr{Op: ir.OpStore, Dst: ir.NoReg,
						A: zeroReg(), B: t, Pred: ir.NoReg, Imm: off})
					continue
				}
			}
			out = append(out, in)
		}
		b.Instrs = out
	}
	f.MarkDirty() // blocks rewritten in place above
}

// isRecursive reports whether f can reach itself through calls.
func isRecursive(f *ir.Function) bool {
	if f.Prog == nil {
		// Without a program we only detect direct recursion.
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpCall && in.Callee == f.Name {
					return true
				}
			}
		}
		return false
	}
	seen := map[string]bool{}
	var visit func(name string) bool
	visit = func(name string) bool {
		if seen[name] {
			return false
		}
		seen[name] = true
		fn := f.Prog.Func(name)
		if fn == nil {
			return false
		}
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpCall {
					if in.Callee == f.Name {
						return true
					}
					if visit(in.Callee) {
						return true
					}
				}
			}
		}
		return false
	}
	return visit(f.Name)
}

// violatingBlocks returns the blocks that break the per-block bank or
// size constraints under the given assignment.
func violatingBlocks(f *ir.Function, phys map[ir.Reg]int, opts Options) []*ir.Block {
	lv := analysis.ComputeLiveness(f)
	var out []*ir.Block
	for _, b := range f.Blocks {
		if blockViolation(b, lv, phys, opts) != nil {
			out = append(out, b)
		}
	}
	return out
}

// findViolatingBlock returns a block that breaks the per-block bank
// or size constraints under the given assignment, or nil.
func findViolatingBlock(f *ir.Function, phys map[ir.Reg]int, opts Options) *ir.Block {
	bs := violatingBlocks(f, phys, opts)
	if len(bs) == 0 {
		return nil
	}
	return bs[0]
}

// bankScratch is the pooled working state of blockViolation's bank
// check: a seen-architectural-register table plus per-bank counters.
type bankScratch struct {
	seen []bool
	cnt  []int32
	regs []ir.Reg
}

var bankPool = sync.Pool{New: func() any { return new(bankScratch) }}

func (sc *bankScratch) prep(numRegs, banks int) {
	if cap(sc.seen) < numRegs {
		sc.seen = make([]bool, numRegs)
	} else {
		sc.seen = sc.seen[:numRegs]
		clear(sc.seen)
	}
	if cap(sc.cnt) < banks {
		sc.cnt = make([]int32, banks)
	} else {
		sc.cnt = sc.cnt[:banks]
		clear(sc.cnt)
	}
}

// blockViolation explains how b violates the constraints, or nil.
func blockViolation(b *ir.Block, lv *analysis.Liveness, phys map[ir.Reg]int, opts Options) error {
	s := trips.Measure(b, lv)
	if err := opts.Cons.Check(s); err != nil {
		return err
	}
	// Bank limits: distinct architectural registers read (upward
	// exposed) and written (live-out writes) per bank.
	sc := bankPool.Get().(*bankScratch)
	defer bankPool.Put(sc)

	sc.prep(opts.NumRegs, opts.Banks)
	sc.regs = lv.UEVar[b].AppendMembers(sc.regs[:0])
	for _, r := range sc.regs {
		if ph, ok := phys[r]; ok && !sc.seen[ph] {
			sc.seen[ph] = true
			sc.cnt[ph%opts.Banks]++
		}
	}
	for bank, n := range sc.cnt {
		if int(n) > opts.Cons.MaxReadsPerBank {
			return fmt.Errorf("regalloc: block %s reads %d registers in bank %d (max %d)",
				b, n, bank, opts.Cons.MaxReadsPerBank)
		}
	}

	sc.prep(opts.NumRegs, opts.Banks)
	sc.regs = analysis.LiveOutWritesAppend(b, lv, sc.regs[:0])
	for _, r := range sc.regs {
		if ph, ok := phys[r]; ok && !sc.seen[ph] {
			sc.seen[ph] = true
			sc.cnt[ph%opts.Banks]++
		}
	}
	for bank, n := range sc.cnt {
		if int(n) > opts.Cons.MaxWritesPerBank {
			return fmt.Errorf("regalloc: block %s writes %d registers in bank %d (max %d)",
				b, n, bank, opts.Cons.MaxWritesPerBank)
		}
	}
	return nil
}

// splitBlock performs reverse if-conversion on b: the block is cut at
// the legal position (before its first exit) that minimizes the
// number of values crossing the cut — cross-block communication costs
// register reads/writes, so the cut point matters (§9). The first
// half falls through to a new block holding the rest. Returns false
// if the block is too small to split.
func splitBlock(f *ir.Function, b *ir.Block) bool {
	// Find the first exit instruction; cuts past it are illegal.
	firstExit := len(b.Instrs)
	for i, in := range b.Instrs {
		if in.Op == ir.OpBr || in.Op == ir.OpRet {
			firstExit = i
			break
		}
	}
	if firstExit < 2 || len(b.Instrs) < 4 {
		return false
	}
	// For each candidate cut, count registers defined before and used
	// at-or-after the cut. Prefer mid-block cuts on ties.
	lastDef := map[ir.Reg]int{}
	for i, in := range b.Instrs {
		if d := in.Def(); d.Valid() {
			lastDef[d] = i
		}
	}
	bestCut, bestScore := -1, 1<<30
	var buf []ir.Reg
	crossing := map[ir.Reg]bool{}
	for cutCand := 1; cutCand < firstExit; cutCand++ {
		for k := range crossing {
			delete(crossing, k)
		}
		for i := cutCand; i < len(b.Instrs); i++ {
			buf = b.Instrs[i].Uses(buf)
			for _, r := range buf {
				if d, ok := lastDef[r]; ok && d < cutCand {
					crossing[r] = true
				}
			}
		}
		score := len(crossing)*4 + abs(cutCand-len(b.Instrs)/2)
		if score < bestScore {
			bestCut, bestScore = cutCand, score
		}
	}
	cut := bestCut
	if cut < 1 {
		return false
	}
	rest := b.Instrs[cut:]
	nb := &ir.Block{ID: -1, Name: b.Name + ".split", Fn: f, Hyper: b.Hyper}
	nb.Instrs = append(nb.Instrs, rest...)
	f.AdoptBlock(nb)
	b.Instrs = append(b.Instrs[:cut:cut], &ir.Instr{Op: ir.OpBr, Dst: ir.NoReg,
		A: ir.NoReg, B: ir.NoReg, Pred: ir.NoReg, Target: nb})
	f.MarkDirty() // b.Instrs rewritten in place above
	return true
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// AllocateProgram allocates every function, returning per-function
// assignments. Functions that fail (e.g. recursive with spills) are
// reported in errs and left untouched semantically (spill code may
// not have been inserted for them).
func AllocateProgram(p *ir.Program, opts Options) (map[string]*Assignment, map[string]error) {
	asns := map[string]*Assignment{}
	errs := map[string]error{}
	for _, f := range p.OrderedFuncs() {
		a, err := Allocate(f, p, opts)
		if err != nil {
			errs[f.Name] = err
			continue
		}
		asns[f.Name] = a
	}
	return asns, errs
}
