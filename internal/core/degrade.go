package core

import (
	"fmt"

	"repro/internal/ir"
)

// Degradation records one function that a mid-end phase could not
// transform: the phase panicked or produced IR that failed
// verification, so the function was rolled back to its pre-phase form
// (for hyperblock formation, its basic-block form) and compilation of
// the rest of the program continued. This is the compiler's graceful
// degradation policy: a formation bug costs one function its
// hyperblocks, never the whole program.
type Degradation struct {
	Func  string // function name
	Phase string // phase that failed ("formation", "unrollpeel", ...)
	Err   string // panic value or verifier error
}

func (d Degradation) String() string {
	return fmt.Sprintf("%s: %s degraded to pre-phase form: %s", d.Func, d.Phase, d.Err)
}

// GuardFunction runs phase over fn with panic recovery and post-phase
// verification. It returns the transformed function, or — when phase
// panics or its result fails ir.Verify — a diagnostic and the
// untouched snapshot taken before the phase ran. phase may mutate fn
// freely (the snapshot is a deep clone). Shared by FormProgram and the
// compiler's unroll/peel driver.
func GuardFunction(fn *ir.Function, phaseName string, phase func(*ir.Function) *ir.Function) (*ir.Function, *Degradation) {
	snapshot := ir.CloneFunction(fn)
	nf, err := runRecovered(fn, phase)
	if err != nil {
		return snapshot, &Degradation{Func: fn.Name, Phase: phaseName, Err: err.Error()}
	}
	return nf, nil
}

// runRecovered executes the phase and the post-phase verification
// under one recover scope: a phase that returns IR broken enough to
// make the verifier itself panic (a nil block, a dangling branch
// target) must restore the snapshot exactly like a phase panic or an
// ordinary verifier failure — a crash in the checker is still a
// failed phase, never an escape hatch past the guard.
func runRecovered(fn *ir.Function, phase func(*ir.Function) *ir.Function) (nf *ir.Function, err error) {
	defer func() {
		if r := recover(); r != nil {
			nf, err = nil, fmt.Errorf("panic: %v", r)
		}
	}()
	nf = phase(fn)
	if verr := ir.Verify(nf); verr != nil {
		return nil, fmt.Errorf("post-phase verify: %w", verr)
	}
	return nf, nil
}
