package core

import (
	"repro/internal/ir"
	"repro/internal/profile"
)

// greedyPolicy is the default first-candidate (breadth-first worklist
// order) policy used when Config.Policy is nil.
type greedyPolicy struct{}

func (greedyPolicy) Name() string     { return "greedy" }
func (greedyPolicy) Prepare(*Context) {}
func (greedyPolicy) Select(_ *Context, cands []*ir.Block) int {
	if len(cands) == 0 {
		return -1
	}
	return 0
}

// ExpandBlock grows the hyperblock with the given seed block ID until
// no candidate successor can be merged (the paper's ExpandBlock,
// Figure 5). It returns the final block.
func (fo *Former) ExpandBlock(seedID int) *ir.Block {
	pol := fo.cfg.Policy
	if pol == nil {
		pol = greedyPolicy{}
	}
	hb := fo.f.BlockByID(seedID)
	if hb == nil {
		return nil
	}

	loops := fo.cache.Loops(fo.f)
	ctx := &Context{F: fo.f, HB: hb, Prof: fo.cfg.Prof, Loops: loops, Cons: fo.cfg.Cons}
	pol.Prepare(ctx)

	// tried marks candidates that failed for this hyperblock (the
	// paper removes failed candidates permanently); attemptCount
	// bounds repeated successful merges of the same block (repeated
	// peeling/unrolling) as a convergence backstop.
	tried := map[int]bool{}
	attemptCount := map[int]int{}
	merges := 0

	var candidates []*ir.Block
	addCandidates := func() {
		present := map[int]bool{}
		for _, c := range candidates {
			present[c.ID] = true
		}
		for _, s := range hb.Succs() {
			if tried[s.ID] || present[s.ID] {
				continue
			}
			if attemptCount[s.ID] >= fo.cfg.MaxRepeatPerCandidate {
				continue
			}
			candidates = append(candidates, s)
			present[s.ID] = true
		}
	}
	addCandidates()

	for len(candidates) > 0 && merges < fo.cfg.MaxMergesPerBlock {
		// Cooperative cancellation: a deadline hit mid-convergence
		// stops expanding here; the committed merges so far leave the
		// function valid (each commit is individually legal), and the
		// latched error propagates out of FormFunction.
		if fo.checkpoint() != nil {
			break
		}
		i := pol.Select(ctx, candidates)
		if i < 0 {
			break
		}
		s := candidates[i]
		candidates = append(candidates[:i], candidates[i+1:]...)
		attemptCount[s.ID]++

		if !fo.LegalMerge(hb, s, loops) {
			tried[s.ID] = true
			continue
		}
		if !fo.MergeBlocks(hb, s, loops) {
			// §9 extension: a rejected oversize candidate may be
			// split; its first half becomes a fresh candidate.
			if fo.cfg.SplitOversize && s != hb && !s.HasCall() &&
				len(s.Instrs) > fo.cfg.Cons.MaxInstrs/4 {
				if nb := fo.SplitOversizeCandidate(s); nb != nil {
					fo.record(Decision{Kind: DecSplit, Cand: s.ID})
					loops = fo.cache.Loops(fo.f)
					ctx.Loops = loops
					candidates = append(candidates, s)
					_ = nb
					continue
				}
			}
			tried[s.ID] = true
			continue
		}

		// Success: the working function was replaced; re-resolve
		// everything by stable ID and refresh analyses.
		merges++
		hb = fo.f.BlockByID(seedID)
		loops = fo.cache.Loops(fo.f)
		ctx.F, ctx.HB, ctx.Loops = fo.f, hb, loops
		// Stale candidate pointers refer to the previous clone:
		// re-resolve, dropping blocks that no longer exist.
		fresh := candidates[:0]
		for _, c := range candidates {
			if nb := fo.f.BlockByID(c.ID); nb != nil {
				fresh = append(fresh, nb)
			}
		}
		candidates = fresh
		// The merged block's successors become candidates (the
		// paper's line 8).
		addCandidates()
	}
	if merges > 0 {
		hb.Hyper = true
	}
	return hb
}

// FormFunction runs convergent hyperblock formation over every region
// of f: blocks are visited in reverse postorder and each not-yet-
// consumed block seeds one ExpandBlock pass. It returns the resulting
// function (the input function must be considered consumed) and the
// accumulated statistics. The error is non-nil only when
// Config.Checkpoint aborted formation; the returned function is then
// the valid partial result (every committed merge was legal), which
// callers should discard when they propagate the cancellation.
func FormFunction(f *ir.Function, cfg Config) (*ir.Function, Stats, error) {
	nf, st, _, err := formFunction(f, cfg, false)
	return nf, st, err
}

// formFunction is FormFunction with optional decision recording.
//
// The seed scan is linear, not quadratic: a cursor into the current
// RPO advances past consumed blocks and only rewinds when the working
// function actually changed (pointer or mutation version), which is
// exactly when the cached RPO is recomputed. The seed sequence is
// identical to rescanning from index 0 every iteration — an unchanged
// function has an unchanged RPO, and every block before the cursor is
// already done. The done set is a dense bitmap indexed by block ID
// (IDs are bounded by BlockIDBound and grow only when splits adopt
// new blocks).
func formFunction(f *ir.Function, cfg Config, record bool) (*ir.Function, Stats, *FuncTrace, error) {
	fo := NewFormer(f, cfg)
	if record {
		fo.rec = &traceRecorder{ft: &FuncTrace{Fingerprint: FingerprintFunction(f)}}
	}
	done := make([]bool, f.BlockIDBound())
	cur := 0
	curF, curV := fo.f, fo.f.Version()
	for fo.checkpoint() == nil {
		if fo.f != curF || fo.f.Version() != curV {
			cur, curF, curV = 0, fo.f, fo.f.Version()
		}
		rpo := fo.cache.RPO(fo.f)
		seed := -1
		for cur < len(rpo) {
			if id := rpo[cur].ID; id >= len(done) || !done[id] {
				seed = id
				break
			}
			cur++
		}
		if seed < 0 {
			break
		}
		if seed >= len(done) {
			nd := make([]bool, seed+1)
			copy(nd, done)
			done = nd
		}
		done[seed] = true
		fo.beginSeed(seed)
		fo.ExpandBlock(seed)
	}
	var ft *FuncTrace
	if record && fo.err == nil {
		ft = fo.rec.ft
	}
	return fo.f, fo.stats, ft, fo.err
}

// FormProgram applies FormFunction to every function of p, replacing
// them in place, and returns aggregate statistics. When prof is
// non-nil, each function's formation sees its own profile.
//
// Formation of each function is guarded: if it panics or yields IR
// that fails verification, that function alone is rolled back to its
// basic-block (pre-formation) form and reported in the returned
// degradations; every other function still forms normally. Degraded
// functions contribute nothing to the aggregate stats.
//
// A Config.Checkpoint abort is not a degradation: the first
// checkpoint error stops the walk and is returned, with the
// in-progress function rolled back to its pre-formation snapshot so
// the program is never left half-formed.
func FormProgram(p *ir.Program, cfg Config, prof *profile.Profile) (Stats, []Degradation, error) {
	st, deg, _, err := formProgram(p, cfg, prof, false)
	return st, deg, err
}

// FormProgramTrace is FormProgram with decision recording: it
// additionally returns a replayable skeleton of the run (see
// ReplayProgram). Functions that degraded get no trace entry; the
// trace is nil when formation was canceled.
func FormProgramTrace(p *ir.Program, cfg Config, prof *profile.Profile) (Stats, []Degradation, *ProgramTrace, error) {
	return formProgram(p, cfg, prof, true)
}

func formProgram(p *ir.Program, cfg Config, prof *profile.Profile, record bool) (Stats, []Degradation, *ProgramTrace, error) {
	var total Stats
	var degraded []Degradation
	var tr *ProgramTrace
	if record {
		tr = &ProgramTrace{Funcs: map[string]*FuncTrace{}}
	}
	for _, name := range p.FuncOrder {
		c := cfg
		if prof != nil {
			c.Prof = prof.Get(name)
		}
		var st Stats
		var ft *FuncTrace
		var cerr error
		fn := p.Funcs[name]
		nf, deg := GuardFunction(fn, "formation", func(f *ir.Function) *ir.Function {
			var formed *ir.Function
			formed, st, ft, cerr = formFunction(f, c, record)
			return formed
		})
		if cerr != nil {
			// Canceled mid-function: keep the untouched original so
			// callers that ignore the error still hold valid IR.
			return total, degraded, nil, cerr
		}
		if deg != nil {
			degraded = append(degraded, *deg)
			st = Stats{}
			ft = nil
		}
		if record && ft != nil {
			tr.Funcs[name] = ft
		}
		nf.Prog = p
		p.Funcs[name] = nf
		total.Add(st)
	}
	return total, degraded, tr, nil
}
