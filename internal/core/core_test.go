package core

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/sim/functional"
	"repro/internal/trips"
)

func relaxed() Config {
	return Config{Cons: trips.Default(), IterOpt: true, HeadDup: true}
}

// figure2CFG builds the paper's Figure 2 shape:
//
//	A: c = a0 < a1; br c? B : C
//	B: x = a0 + a1; br D
//	C: x = a0 - a1; br D        (side entrance to D)
//	D: ret x
func figure2CFG(t *testing.T) (*ir.Function, map[string]int) {
	t.Helper()
	f := ir.NewFunction("fig2", 2)
	A := f.NewBlock("A")
	B := f.NewBlock("B")
	C := f.NewBlock("C")
	D := f.NewBlock("D")
	x := f.NewReg()
	bd := ir.NewBuilder(f, A)
	c := bd.Bin(ir.OpCmpLT, f.Params[0], f.Params[1])
	bd.CondBr(c, B, C)
	bd.SetBlock(B)
	bd.BinInto(ir.OpAdd, x, f.Params[0], f.Params[1])
	bd.Br(D)
	bd.SetBlock(C)
	bd.BinInto(ir.OpSub, x, f.Params[0], f.Params[1])
	bd.Br(D)
	bd.SetBlock(D)
	bd.Ret(x)
	if err := ir.Verify(f); err != nil {
		t.Fatal(err)
	}
	ids := map[string]int{"A": A.ID, "B": B.ID, "C": C.ID, "D": D.ID}
	return f, ids
}

func runFn(t *testing.T, f *ir.Function, args ...int64) int64 {
	t.Helper()
	p := ir.NewProgram()
	p.AddFunc(ir.CloneFunction(f))
	v, _, _, err := functional.RunProgram(p, f.Name, args...)
	if err != nil {
		t.Fatalf("run %s: %v", f.Name, err)
	}
	return v
}

func TestTailDuplicationFigure2(t *testing.T) {
	f, ids := figure2CFG(t)
	fo := NewFormer(f, relaxed())
	hb := fo.ExpandBlock(ids["A"])
	nf := fo.Result()

	// Everything should fold into a single hyperblock: B merged
	// plainly or by duplication, C merged, D tail-duplicated twice
	// then the original D removed as unreachable.
	if len(nf.Blocks) != 1 {
		t.Fatalf("expected full convergence to 1 block, got %d:\n%s",
			len(nf.Blocks), ir.FormatFunction(nf))
	}
	if !hb.Hyper {
		t.Error("result not marked hyper")
	}
	st := fo.Stats()
	if st.Merges < 3 {
		t.Errorf("expected >=3 merges, got %+v", st)
	}
	if st.TailDups < 1 {
		t.Errorf("expected tail duplication, got %+v", st)
	}
	// Semantics: |a-b| style behaviour preserved.
	for _, args := range [][2]int64{{3, 9}, {9, 3}, {4, 4}} {
		want := args[0] - args[1]
		if args[0] < args[1] {
			want = args[0] + args[1]
		}
		if got := runFn(t, nf, args[0], args[1]); got != want {
			t.Errorf("fig2(%v) = %d, want %d", args, got, want)
		}
	}
}

// figure3CFG: A -> B; B is a self-loop header (B -> B | C); C: ret.
// Expanding from A requires head duplication (peeling).
func figure3CFG(t *testing.T) (*ir.Function, map[string]int) {
	t.Helper()
	f := ir.NewFunction("fig3", 1)
	A := f.NewBlock("A")
	B := f.NewBlock("B")
	C := f.NewBlock("C")
	i := f.NewReg()
	bd := ir.NewBuilder(f, A)
	bd.ConstInto(i, 0)
	bd.Br(B)
	bd.SetBlock(B)
	one := bd.Const(1)
	bd.BinInto(ir.OpAdd, i, i, one)
	c := bd.Bin(ir.OpCmpLT, i, f.Params[0])
	bd.CondBr(c, B, C)
	bd.SetBlock(C)
	bd.Ret(i)
	if err := ir.Verify(f); err != nil {
		t.Fatal(err)
	}
	return f, map[string]int{"A": A.ID, "B": B.ID, "C": C.ID}
}

func TestHeadDuplicationPeeling(t *testing.T) {
	f, ids := figure3CFG(t)
	cfg := relaxed()
	cfg.IterOpt = false // keep the loop structure visible
	cfg.MaxRepeatPerCandidate = 1
	fo := NewFormer(f, cfg)
	fo.ExpandBlock(ids["A"])
	nf := fo.Result()
	st := fo.Stats()
	if st.Peels < 1 {
		t.Fatalf("expected peeling, got %+v\n%s", st, ir.FormatFunction(nf))
	}
	// The peeled hyperblock must now have an edge back into the loop
	// header B (Figure 3c: B' -> B).
	A := nf.BlockByID(ids["A"])
	foundB := false
	for _, s := range A.Succs() {
		if s.ID == ids["B"] {
			foundB = true
		}
	}
	if !foundB {
		t.Errorf("peeled block should branch to the original header:\n%s", ir.FormatFunction(nf))
	}
	// Semantics for trip counts 1..4.
	for n := int64(1); n <= 4; n++ {
		if got := runFn(t, nf, n); got != n {
			t.Errorf("fig3(%d) = %d", n, got)
		}
	}
}

func TestHeadDuplicationPeelingDisabled(t *testing.T) {
	f, ids := figure3CFG(t)
	cfg := relaxed()
	cfg.HeadDup = false
	fo := NewFormer(f, cfg)
	fo.ExpandBlock(ids["A"])
	if st := fo.Stats(); st.Peels != 0 || st.Unrolls != 0 {
		t.Fatalf("head duplication must be disabled, got %+v", st)
	}
}

// TestHeadDuplicationUnrolling expands from the loop header itself
// (Figure 4): the self back edge must be unrolled.
func TestHeadDuplicationUnrolling(t *testing.T) {
	f, ids := figure3CFG(t)
	cfg := relaxed()
	cfg.IterOpt = false
	cfg.MaxUnrollPerLoop = 3
	fo := NewFormer(f, cfg)
	fo.ExpandBlock(ids["B"])
	nf := fo.Result()
	st := fo.Stats()
	if st.Unrolls != 3 {
		t.Fatalf("expected 3 unrolls, got %+v\n%s", st, ir.FormatFunction(nf))
	}
	B := nf.BlockByID(ids["B"])
	// B must still have a self back edge (the appended iteration's
	// branch) and be much bigger than before.
	self := false
	for _, s := range B.Succs() {
		if s == B {
			self = true
		}
	}
	if !self {
		t.Errorf("unrolled block lost its back edge:\n%s", ir.FormatBlock(B))
	}
	for n := int64(1); n <= 9; n++ {
		if got := runFn(t, nf, n); got != n {
			t.Errorf("unrolled fig3(%d) = %d", n, got)
		}
	}
}

// TestUnrollAppendsOneIterationAtATime verifies the saved-body
// mechanism: three unrolls of a loop body of size k grow the block by
// about 3k, not exponentially (the powers-of-two limitation).
func TestUnrollAppendsOneIterationAtATime(t *testing.T) {
	f, ids := figure3CFG(t)
	baseSize := len(f.BlockByID(ids["B"]).Instrs)
	cfg := relaxed()
	cfg.IterOpt = false
	cfg.MaxUnrollPerLoop = 3
	fo := NewFormer(f, cfg)
	fo.ExpandBlock(ids["B"])
	B := fo.Result().BlockByID(ids["B"])
	// Linear growth: base + 3 × (body + predicate glue + null
	// writes) ≈ base + 3×16. Doubling the current body each time
	// (the powers-of-two behaviour) would exceed 60 instructions by
	// the third unroll.
	if got := len(B.Instrs); got >= 60 {
		t.Fatalf("unrolling grew exponentially: %d -> %d", baseSize, got)
	} else if got < baseSize*3 {
		t.Fatalf("unrolling too small: %d -> %d", baseSize, got)
	}
}

func TestConstraintsStopConvergence(t *testing.T) {
	f, ids := figure2CFG(t)
	cfg := relaxed()
	cfg.Cons = trips.Constraints{MaxInstrs: 5, MaxMemOps: 2, RegBanks: 4,
		MaxReadsPerBank: 8, MaxWritesPerBank: 8}
	fo := NewFormer(f, cfg)
	fo.ExpandBlock(ids["A"])
	nf := fo.Result()
	st := fo.Stats()
	if st.Rejects == 0 {
		t.Errorf("tight constraints should reject merges: %+v", st)
	}
	lv := analysis.ComputeLiveness(nf)
	for _, b := range nf.Blocks {
		if err := cfg.Cons.LegalBlock(b, lv); err != nil {
			t.Errorf("block %s violates constraints after formation: %v", b, err)
		}
	}
}

func TestCallsBlockMerging(t *testing.T) {
	prog, err := lang.Compile(`
func g(x) { return x + 1; }
func main(n) {
  var s = g(n);
  if (s > 3) { s = s * 2; }
  return s;
}`)
	if err != nil {
		t.Fatal(err)
	}
	f := prog.Func("main")
	nf, _, _ := FormFunction(f, relaxed())
	// Any block containing a call must not have been merged with
	// anything else that would place instructions after the call's
	// continuation... specifically, every call-containing block must
	// still verify and execution must be correct.
	if err := ir.Verify(nf); err != nil {
		t.Fatal(err)
	}
	nf.Prog = prog
	prog.Funcs["main"] = nf
	v, _, _, err := functional.RunProgram(prog, "main", 5)
	if err != nil {
		t.Fatal(err)
	}
	if v != 12 {
		t.Fatalf("main(5) = %d", v)
	}
}

// The master property: formation must preserve program semantics
// (results and print output) across a range of programs, inputs, and
// configurations.
func TestFormationPreservesSemantics(t *testing.T) {
	srcs := map[string]string{
		"branchy": `
func main(n) {
  var s = 0;
  for (var i = 0; i < n; i = i + 1) {
    if (i % 3 == 0) { s = s + i; }
    else if (i % 3 == 1) { s = s + 2 * i; }
    else { s = s - i; }
    if (s > 50) { s = s - 17; print(s); }
  }
  print(s);
  return s;
}`,
		"whileloops": `
func main(n) {
  var total = 0;
  var o = 0;
  while (o < n) {
    var i = 0;
    while (i < 3) { total = total + o; i = i + 1; }
    var j = 0;
    while (j < o % 4) { total = total + 1; j = j + 1; }
    o = o + 1;
  }
  print(total);
  return total;
}`,
		"arrays": `
array data[32];
array out[32];
func main(n) {
  for (var i = 0; i < 32; i = i + 1) { data[i] = i * 7 % 13; }
  var acc = 0;
  for (var j = 0; j < n; j = j + 1) {
    var v = data[j % 32];
    if (v > 6) { out[j % 32] = v - 6; } else { out[j % 32] = v; }
    acc = acc + out[j % 32];
  }
  print(acc);
  return acc;
}`,
		"earlyret": `
func find(x) {
  var i = 0;
  while (i < 10) {
    if (i * i >= x) { return i; }
    i = i + 1;
  }
  return -1;
}
func main(n) {
  var s = 0;
  for (var k = 0; k < n; k = k + 1) { s = s + find(k); }
  return s;
}`,
	}
	configs := map[string]Config{
		"ifconv-only":   {Cons: trips.Default(), IterOpt: false, HeadDup: false},
		"headdup":       {Cons: trips.Default(), IterOpt: false, HeadDup: true},
		"convergent":    {Cons: trips.Default(), IterOpt: true, HeadDup: true},
		"tiny-blocks":   {Cons: trips.Constraints{MaxInstrs: 12, MaxMemOps: 4, RegBanks: 4, MaxReadsPerBank: 8, MaxWritesPerBank: 8}, IterOpt: true, HeadDup: true},
		"medium-blocks": {Cons: trips.Constraints{MaxInstrs: 48, MaxMemOps: 16, RegBanks: 4, MaxReadsPerBank: 8, MaxWritesPerBank: 8}, IterOpt: true, HeadDup: true},
	}
	for sname, src := range srcs {
		base, err := lang.Compile(src)
		if err != nil {
			t.Fatalf("%s: %v", sname, err)
		}
		for _, n := range []int64{0, 1, 2, 5, 17} {
			wantV, wantOut, _, err := functional.RunProgram(ir.CloneProgram(base), "main", n)
			if err != nil {
				t.Fatalf("%s base: %v", sname, err)
			}
			for cname, cfg := range configs {
				p := ir.CloneProgram(base)
				FormProgram(p, cfg, nil)
				if err := ir.VerifyProgram(p); err != nil {
					t.Fatalf("%s/%s: invalid after formation: %v", sname, cname, err)
				}
				gotV, gotOut, _, err := functional.RunProgram(p, "main", n)
				if err != nil {
					t.Fatalf("%s/%s n=%d: %v", sname, cname, n, err)
				}
				if gotV != wantV {
					t.Fatalf("%s/%s n=%d: result %d, want %d", sname, cname, n, gotV, wantV)
				}
				if len(gotOut) != len(wantOut) {
					t.Fatalf("%s/%s n=%d: output %v, want %v", sname, cname, n, gotOut, wantOut)
				}
				for i := range wantOut {
					if gotOut[i] != wantOut[i] {
						t.Fatalf("%s/%s n=%d: output %v, want %v", sname, cname, n, gotOut, wantOut)
					}
				}
			}
		}
	}
}

// TestFormationReducesDynamicBlocks checks the headline effect: for a
// loopy program, convergent formation reduces blocks executed.
func TestFormationReducesDynamicBlocks(t *testing.T) {
	src := `
func main(n) {
  var s = 0;
  for (var i = 0; i < n; i = i + 1) {
    if (i % 2 == 0) { s = s + i; } else { s = s + 2; }
  }
  return s;
}`
	base, err := lang.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	_, _, st0, err := functional.RunProgram(ir.CloneProgram(base), "main", 100)
	if err != nil {
		t.Fatal(err)
	}
	p := ir.CloneProgram(base)
	FormProgram(p, relaxed(), nil)
	_, _, st1, err := functional.RunProgram(p, "main", 100)
	if err != nil {
		t.Fatal(err)
	}
	if st1.Blocks >= st0.Blocks {
		t.Fatalf("formation did not reduce blocks executed: %d -> %d", st0.Blocks, st1.Blocks)
	}
	if st1.Blocks*2 > st0.Blocks {
		t.Logf("note: modest reduction %d -> %d", st0.Blocks, st1.Blocks)
	}
}

func TestSnapshotMaterializeMissingTarget(t *testing.T) {
	f, ids := figure3CFG(t)
	B := f.BlockByID(ids["B"])
	snap := snapshotBody(B)
	// Materializing into a function lacking block C must fail.
	g := ir.NewFunction("g", 0)
	gb := g.NewBlock("entry")
	ir.NewBuilder(g, gb).Ret(ir.NoReg)
	if _, ok := snap.materialize(g); ok {
		t.Fatal("materialize must fail when a target is missing")
	}
	if body, ok := snap.materialize(f); !ok || len(body) != len(B.Instrs) {
		t.Fatal("materialize into the original function must succeed")
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Merges: 1, TailDups: 2, Unrolls: 3, Peels: 4, Attempts: 5, Rejects: 6}
	b := Stats{Merges: 10, TailDups: 20, Unrolls: 30, Peels: 40, Attempts: 50, Rejects: 60}
	a.Add(b)
	if a.Merges != 11 || a.TailDups != 22 || a.Unrolls != 33 || a.Peels != 44 ||
		a.Attempts != 55 || a.Rejects != 66 {
		t.Fatalf("Add wrong: %+v", a)
	}
}

func TestConjoiner(t *testing.T) {
	f := ir.NewFunction("f", 4)
	hb := f.NewBlock("hb")
	p, q := f.Params[0], f.Params[1]
	cj := newConjoiner(f, hb, p, true, 0)
	np := cj.np
	if !np.Valid() || len(hb.Instrs) != 2 {
		t.Fatal("outer predicate must be captured eagerly")
	}

	in1 := &ir.Instr{Op: ir.OpAdd, Dst: f.NewReg(), A: f.Params[2], B: f.Params[3], Pred: ir.NoReg}
	cj.apply(in1)
	if in1.Pred != np || !in1.PredSense {
		t.Fatal("unpredicated instruction should adopt the captured outer predicate")
	}

	in2 := &ir.Instr{Op: ir.OpSub, Dst: f.NewReg(), A: f.Params[2], B: f.Params[3], Pred: q, PredSense: false}
	cj.apply(in2)
	if !in2.Pred.Valid() || in2.Pred == q || !in2.PredSense {
		t.Fatalf("conjunction not applied: %+v", in2)
	}
	glue1 := len(hb.Instrs)

	// Same inner predicate again: cached, no new glue.
	in3 := &ir.Instr{Op: ir.OpMul, Dst: f.NewReg(), A: f.Params[2], B: f.Params[3], Pred: q, PredSense: false}
	cj.apply(in3)
	if len(hb.Instrs) != glue1 {
		t.Fatal("conjunction glue not cached")
	}
	if in3.Pred != in2.Pred {
		t.Fatal("cached conjunction differs")
	}

	// Redefining the inner predicate register must invalidate the
	// cached conjunction.
	cj.invalidate(q)
	glueBefore := len(hb.Instrs)
	in3b := &ir.Instr{Op: ir.OpMul, Dst: f.NewReg(), A: f.Params[2], B: f.Params[3], Pred: q, PredSense: false}
	cj.apply(in3b)
	if len(hb.Instrs) == glueBefore {
		t.Fatal("invalidated conjunction must be recomputed")
	}

	// Unconditional conjoiner leaves predicates alone.
	cj2 := newConjoiner(f, hb, ir.NoReg, true, 0)
	in4 := &ir.Instr{Op: ir.OpMul, Dst: f.NewReg(), A: f.Params[2], B: f.Params[3], Pred: q, PredSense: true}
	cj2.apply(in4)
	if in4.Pred != q || !in4.PredSense {
		t.Fatal("unconditional merge must preserve predicates")
	}
}

func TestConjunctionSemantics(t *testing.T) {
	// Build by hand: hb with cond c1 branching to S which has cond c2.
	// After two merges the innermost assignment is predicated on
	// c1 && c2; run all four truth combinations.
	src := `
func main(a, b) {
  var s = 0;
  if (a > 0) {
    s = s + 1;
    if (b > 0) { s = s + 10; }
  }
  return s;
}`
	base, err := lang.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	p := ir.CloneProgram(base)
	FormProgram(p, relaxed(), nil)
	for _, tc := range []struct{ a, b, want int64 }{
		{1, 1, 11}, {1, 0, 1}, {0, 1, 0}, {0, 0, 0},
	} {
		got, _, _, err := functional.RunProgram(p, "main", tc.a, tc.b)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Fatalf("main(%d,%d) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}
