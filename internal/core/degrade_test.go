package core

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/ir"
)

// TestGuardFunctionPanicDuringPostVerify covers the nastiest guard
// path: the phase returns normally but hands back IR so broken that
// the post-phase verifier itself panics (a nil block dereferences
// before any verifier check can reject it). The recover scope spans
// the verification, so this must degrade and restore the snapshot
// exactly like a phase panic — not crash the compile.
func TestGuardFunctionPanicDuringPostVerify(t *testing.T) {
	f, _ := figure2CFG(t)
	before := len(f.Blocks)

	nf, deg := GuardFunction(f, "formation", func(fn *ir.Function) *ir.Function {
		// Mutate first so restoration is observable, then smuggle a
		// nil block past the phase: ir.Verify dereferences b.ID and
		// panics.
		fn.Blocks = append(fn.Blocks[:1], nil)
		return fn
	})
	if deg == nil {
		t.Fatal("expected a degradation when the verifier panics")
	}
	if deg.Phase != "formation" || !strings.Contains(deg.Err, "panic") {
		t.Fatalf("degradation should record the panic: %+v", deg)
	}
	if len(nf.Blocks) != before {
		t.Fatalf("snapshot not restored: %d blocks, want %d", len(nf.Blocks), before)
	}
	for i, b := range nf.Blocks {
		if b == nil {
			t.Fatalf("restored snapshot contains the poisoned nil block at %d", i)
		}
	}
	if err := ir.Verify(nf); err != nil {
		t.Fatalf("restored snapshot fails verification: %v", err)
	}
	if got := runFn(t, nf, 3, 5); got != 8 {
		t.Fatalf("restored snapshot misbehaves: got %d, want 8", got)
	}
}

// TestFormFunctionCheckpointAborts proves the formation loop polls the
// checkpoint between convergence iterations and surfaces its error
// instead of finishing the pass.
func TestFormFunctionCheckpointAborts(t *testing.T) {
	f, _ := figure2CFG(t)
	stop := errors.New("checkpoint says stop")
	calls := 0
	cfg := relaxed()
	cfg.Checkpoint = func() error {
		calls++
		if calls > 1 {
			return stop
		}
		return nil
	}
	_, _, err := FormFunction(f, cfg)
	if !errors.Is(err, stop) {
		t.Fatalf("FormFunction err = %v, want wrapped %v", err, stop)
	}
	if calls < 2 {
		t.Fatalf("checkpoint polled %d times, want >= 2", calls)
	}

	// A checkpoint that never fires leaves formation untouched.
	f2, _ := figure2CFG(t)
	cfg2 := relaxed()
	cfg2.Checkpoint = func() error { return nil }
	if _, _, err := FormFunction(f2, cfg2); err != nil {
		t.Fatalf("benign checkpoint aborted formation: %v", err)
	}
}

// TestFormProgramCheckpointLeavesFunctionUntouched proves an aborted
// FormProgram does not publish a half-formed function: the function
// the checkpoint interrupted keeps its original body.
func TestFormProgramCheckpointLeavesFunctionUntouched(t *testing.T) {
	f, _ := figure2CFG(t)
	p := ir.NewProgram()
	p.AddFunc(f)
	before := len(f.Blocks)

	stop := errors.New("canceled")
	cfg := relaxed()
	cfg.Checkpoint = func() error { return stop }
	_, _, err := FormProgram(p, cfg, nil)
	if !errors.Is(err, stop) {
		t.Fatalf("FormProgram err = %v, want wrapped %v", err, stop)
	}
	got := p.Funcs["fig2"]
	if len(got.Blocks) != before {
		t.Fatalf("aborted formation published a transformed function: %d blocks, want %d",
			len(got.Blocks), before)
	}
	if err := ir.Verify(got); err != nil {
		t.Fatalf("function after aborted formation fails verification: %v", err)
	}
}
