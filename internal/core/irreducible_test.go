package core

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/ir"
	"repro/internal/sim/functional"
	"repro/internal/trips"
)

// buildIrreducible constructs a classic irreducible region — two
// blocks that jump into each other with two distinct entries, so
// neither dominates the other and the cycle is not a natural loop:
//
//	entry: br c?  A : B
//	A: x = x+1; br (x<n) ? B : exit
//	B: x = x+3; br (x<2n) ? A : exit
//	exit: ret x
func buildIrreducible(t *testing.T) *ir.Program {
	t.Helper()
	p := ir.NewProgram()
	f := ir.NewFunction("f", 2) // params: c, n
	entry := f.NewBlock("entry")
	A := f.NewBlock("A")
	B := f.NewBlock("B")
	exitB := f.NewBlock("exit")
	x := f.NewReg()

	bd := ir.NewBuilder(f, entry)
	bd.ConstInto(x, 0)
	z := bd.Const(0)
	c := bd.Bin(ir.OpCmpNE, f.Params[0], z)
	bd.CondBr(c, A, B)

	bd.SetBlock(A)
	one := bd.Const(1)
	bd.BinInto(ir.OpAdd, x, x, one)
	ca := bd.Bin(ir.OpCmpLT, x, f.Params[1])
	bd.CondBr(ca, B, exitB)

	bd.SetBlock(B)
	three := bd.Const(3)
	bd.BinInto(ir.OpAdd, x, x, three)
	n2 := bd.Bin(ir.OpAdd, f.Params[1], f.Params[1])
	cb := bd.Bin(ir.OpCmpLT, x, n2)
	bd.CondBr(cb, A, exitB)

	bd.SetBlock(exitB)
	bd.Ret(x)
	if err := ir.Verify(f); err != nil {
		t.Fatal(err)
	}
	p.AddFunc(f)
	return p
}

// TestIrreducibleCFGAnalyses: the analyses must terminate and give
// sane answers on irreducible control flow (no natural loops, since
// neither cycle header dominates the other).
func TestIrreducibleCFGAnalyses(t *testing.T) {
	p := buildIrreducible(t)
	f := p.Func("f")
	dom := analysis.Dominators(f)
	A := f.BlockByName("A")
	B := f.BlockByName("B")
	if dom.Dominates(A, B) || dom.Dominates(B, A) {
		t.Fatal("neither irreducible-region block dominates the other")
	}
	lf := analysis.Loops(f)
	if lf.IsHeader(A) || lf.IsHeader(B) {
		t.Fatal("irreducible cycle must not register as a natural loop")
	}
	if len(lf.Top) != 0 {
		t.Fatalf("no natural loops expected, got %d", len(lf.Top))
	}
	lv := analysis.ComputeLiveness(f)
	if lv.In[A] == nil || lv.In[B] == nil {
		t.Fatal("liveness incomplete")
	}
}

// TestIrreducibleCFGFormation: convergent formation must terminate
// and preserve semantics on irreducible control flow (tail
// duplication is exactly the transformation that handles such
// regions: each entry gets its own copy).
func TestIrreducibleCFGFormation(t *testing.T) {
	base := buildIrreducible(t)
	for _, args := range [][]int64{{0, 1}, {1, 1}, {0, 5}, {1, 5}, {0, 20}, {1, 20}} {
		want, _, _, err := functional.RunProgram(ir.CloneProgram(base), "f", args...)
		if err != nil {
			t.Fatal(err)
		}
		for _, cfg := range []Config{
			{Cons: trips.Default(), IterOpt: false, HeadDup: false},
			{Cons: trips.Default(), IterOpt: true, HeadDup: true},
		} {
			p := ir.CloneProgram(base)
			FormProgram(p, cfg, nil)
			if err := ir.VerifyProgram(p); err != nil {
				t.Fatalf("args %v: %v", args, err)
			}
			got, _, _, err := functional.RunProgram(p, "f", args...)
			if err != nil {
				t.Fatalf("args %v: %v", args, err)
			}
			if got != want {
				t.Fatalf("args %v: %d != %d", args, got, want)
			}
		}
	}
}
