package core

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/ir"
	"repro/internal/opt"
	"repro/internal/trips"
)

// SplitOversizeCandidate implements the paper's §9 basic-block
// splitting extension: split candidate s (in the working function)
// before its first exit so the halves can be merged separately. The
// cut point minimizes the number of values crossing the split
// (cross-block communication costs register resources, §9). Returns
// the new second-half block, or nil if s cannot be split.
func (fo *Former) SplitOversizeCandidate(s *ir.Block) *ir.Block {
	firstExit := len(s.Instrs)
	for i, in := range s.Instrs {
		if in.Op == ir.OpBr || in.Op == ir.OpRet {
			firstExit = i
			break
		}
	}
	if firstExit < 4 || len(s.Instrs) < 8 {
		return nil
	}
	// Min-crossing cut as in reverse if-conversion.
	lastDef := map[ir.Reg]int{}
	for i, in := range s.Instrs {
		if d := in.Def(); d.Valid() {
			lastDef[d] = i
		}
	}
	bestCut, bestScore := -1, 1<<30
	var buf []ir.Reg
	for cut := 2; cut < firstExit; cut++ {
		crossing := map[ir.Reg]bool{}
		for i := cut; i < len(s.Instrs); i++ {
			buf = s.Instrs[i].Uses(buf)
			for _, r := range buf {
				if d, ok := lastDef[r]; ok && d < cut {
					crossing[r] = true
				}
			}
		}
		score := len(crossing)*4 + abs(cut-len(s.Instrs)/2)
		if score < bestScore {
			bestCut, bestScore = cut, score
		}
	}
	if bestCut < 2 {
		return nil
	}
	rest := s.Instrs[bestCut:]
	nb := &ir.Block{ID: -1, Name: s.Name + ".split", Fn: fo.f, Hyper: s.Hyper}
	nb.Instrs = append(nb.Instrs, rest...)
	fo.f.AdoptBlock(nb)
	s.Instrs = append(s.Instrs[:bestCut:bestCut], &ir.Instr{Op: ir.OpBr,
		Dst: ir.NoReg, A: ir.NoReg, B: ir.NoReg, Pred: ir.NoReg, Target: nb})
	fo.f.MarkDirty() // s.Instrs rewritten in place above
	fo.stats.Splits++
	return nb
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// mergeKind classifies a successful merge per Figure 5.
type mergeKind int

const (
	mergePlain  mergeKind = iota // single predecessor: no duplication
	mergeTail                    // tail duplication
	mergePeel                    // head duplication implementing peeling
	mergeUnroll                  // head duplication implementing unrolling
)

// Former runs convergent hyperblock formation over one function.
type Former struct {
	cfg   Config
	f     *ir.Function
	stats Stats
	// saved holds per-loop-header snapshots for incremental
	// unrolling, keyed by block ID.
	saved map[int]*savedBody
	// unrolls counts unroll iterations per header ID.
	unrolls map[int]int
	// pending chains speculative renames across merge layers of the
	// same hyperblock (see combine), keyed by block ID and then by
	// the identity (BrID) of the branch the renames are valid along:
	// a branch appended by merge layer k fires only when layer k's
	// merge predicate held, and the block's exits are mutually
	// exclusive, so converting that branch later may read layer k's
	// speculative values directly.
	pending map[int]map[int32]map[ir.Reg]ir.Reg
	// cache memoizes RPO/dominators/loops/liveness against the working
	// function's mutation version, so the convergence loop only
	// recomputes analyses after a committed change.
	cache analysis.Cache
	// rec, when non-nil, records every decision for skeleton replay.
	rec *traceRecorder
	// replay, when non-nil, is the committed-merge decision mergeExec
	// is currently replaying; its recorded live-out sets and shape
	// stand in for the per-merge liveness fixpoints.
	replay *Decision
	// lastMerge carries the liveness/shape data mergeExec captured for
	// the most recent successful merge, for MergeBlocks to attach to
	// the recorded decision (recording runs only).
	lastMerge struct {
		out1, out2 []ir.Reg
		shape      trips.BlockStats
	}
	// err latches the first Config.Checkpoint error; once set, the
	// expansion loops stop merging and the error propagates out of
	// FormFunction.
	err error
}

// NewFormer creates a Former for f with the given configuration. The
// function is taken over by the former; retrieve the (possibly
// replaced) result with Result.
func NewFormer(f *ir.Function, cfg Config) *Former {
	return &Former{
		cfg:     cfg.withDefaults(),
		f:       f,
		saved:   map[int]*savedBody{},
		unrolls: map[int]int{},
		pending: map[int]map[int32]map[ir.Reg]ir.Reg{},
	}
}

// Result returns the current working function.
func (fo *Former) Result() *ir.Function { return fo.f }

// Err returns the first checkpoint (cancellation) error observed, or
// nil while formation may continue.
func (fo *Former) Err() error { return fo.err }

// checkpoint polls Config.Checkpoint and latches its first error.
func (fo *Former) checkpoint() error {
	if fo.err == nil && fo.cfg.Checkpoint != nil {
		if err := fo.cfg.Checkpoint(); err != nil {
			fo.err = fmt.Errorf("core: formation canceled: %w", err)
		}
	}
	return fo.err
}

// Stats returns the accumulated formation statistics.
func (fo *Former) Stats() Stats { return fo.stats }

// LegalMerge reports whether merging successor s into hb may be
// attempted (the paper's LegalMerge, Figure 5 line 5). It rejects:
// blocks containing calls (calls terminate TRIPS blocks), candidates
// that are not (unique-branch) successors, self-merges without head
// duplication or beyond the unroll budget, and loop-header merges
// (peeling) when head duplication is disabled.
func (fo *Former) LegalMerge(hb, s *ir.Block, loops *analysis.LoopForest) bool {
	if hb.HasCall() || s.HasCall() {
		return false
	}
	// s must actually be a successor. Parallel branches to s are
	// fine: each merge if-converts one of them (one side entrance at
	// a time), and s stays a candidate for the rest.
	n := 0
	for _, in := range hb.Instrs {
		if in.Op == ir.OpBr && in.Target == s {
			n++
		}
	}
	if n == 0 {
		return false
	}
	if s == hb {
		return fo.cfg.HeadDup && fo.unrolls[hb.ID] < fo.cfg.MaxUnrollPerLoop
	}
	if loops.IsHeader(s) && !loops.IsBackEdge(hb, s) && !fo.cfg.HeadDup {
		return false // peeling requires head duplication
	}
	return true
}

// MergeBlocks attempts to merge s into hb (the paper's MergeBlocks,
// Figure 5). The merge is carried out on a scratch clone of the whole
// function; if the optimized, normalized result satisfies the
// structural constraints, the clone replaces the working function and
// MergeBlocks returns true. On failure the working function is
// untouched.
func (fo *Former) MergeBlocks(hb, s *ir.Block, loops *analysis.LoopForest) bool {
	fo.stats.Attempts++

	// Classify the merge up front (on the real function).
	var kind mergeKind
	switch {
	case s == hb:
		kind = mergeUnroll
	case fo.f.NumPredEdges(s) == 1:
		kind = mergePlain
	case loops.IsHeader(s) && !loops.IsBackEdge(hb, s):
		kind = mergePeel
	default:
		kind = mergeTail
	}

	// Unrolling works from the loop's saved original body so that
	// iterations append one at a time (Figure 4 discussion). The
	// snapshot is taken the first time the header is unrolled.
	if kind == mergeUnroll {
		if _, ok := fo.saved[hb.ID]; !ok {
			fo.saved[hb.ID] = snapshotBody(hb)
		}
	}

	// 1. Copy to scratch space. Steps 2–7 and the commit bookkeeping
	// are shared with skeleton replay (which runs them in place on
	// the working function, with the scratch verifier off).
	fc, m := ir.CloneFunctionMap(fo.f)
	if !fo.mergeExec(fc, m[hb], m[s], kind, true) {
		return false
	}
	d := Decision{Kind: DecMerge, Cand: s.ID, Merge: kind.name()}
	if fo.rec != nil {
		sh := fo.lastMerge.shape
		d.Shape = &sh
		d.Out1, d.Out2 = fo.lastMerge.out1, fo.lastMerge.out2
	}
	fo.record(d)
	return true
}

// mergeExec merges sC into hbC on fc and commits fc as the working
// function on success. fc is either a scratch clone of the working
// function (greedy: a failed attempt must leave it untouched) or the
// working function itself (replay: the outcome is already known, and
// the caller discards the function when the concrete constraints
// disagree with the recorded decision). verify gates the per-merge
// scratch IR check; replay relies on GuardFunction's final verify
// instead.
func (fo *Former) mergeExec(fc *ir.Function, hbC, sC *ir.Block, kind mergeKind, verify bool) bool {
	// 2. Locate the branch being if-converted.
	brIdx := -1
	for i, in := range hbC.Instrs {
		if in.Op == ir.OpBr && in.Target == sC {
			brIdx = i
			break
		}
	}
	if brIdx < 0 {
		fo.record(Decision{Kind: DecReject, Cand: sC.ID, Merge: kind.name(), Reject: RejectBr})
		return false
	}

	// 3. Build the body to merge.
	var body []*ir.Instr
	switch kind {
	case mergeUnroll:
		var ok bool
		body, ok = fo.saved[hbC.ID].materialize(fc)
		if !ok {
			fo.stats.Rejects++
			fo.record(Decision{Kind: DecReject, Cand: sC.ID, Merge: kind.name(), Reject: RejectMat})
			return false
		}
	default:
		cl := sC.Clone(sC.Name + ".dup")
		body = cl.Instrs
	}

	// 4. Combine (if-conversion with predicate conjunction and
	// speculation). When the branch being converted is predicated on
	// a register created by an earlier merge layer, that layer's
	// speculative renames are still valid on this path and seed the
	// rename map, chaining loop-carried values across layers without
	// waiting for their predicated commits. Renamed registers whose
	// definitions were optimized away are dropped.
	var initRename map[ir.Reg]ir.Reg
	chainHit, chainMiss := false, false
	br := hbC.Instrs[brIdx]
	if br.BrID != 0 && !fo.cfg.NoChain {
		if pr := fo.pending[hbC.ID][br.BrID]; pr != nil {
			defined := map[ir.Reg]bool{}
			for _, in := range hbC.Instrs {
				if d := in.Def(); d.Valid() {
					defined[d] = true
				}
			}
			initRename = map[ir.Reg]ir.Reg{}
			for orig, fresh := range pr {
				if defined[fresh] {
					initRename[orig] = fresh
				}
			}
			fo.stats.ChainHits++
			chainHit = true
		} else {
			fo.stats.ChainMisses++
			chainMiss = true
		}
	}
	brIDFloor := fc.NewBrID() // all IDs assigned by this combine exceed this
	_, outRename := combine(fc, hbC, brIdx, body, initRename)

	// 5. Optimize the merged block (when iterative optimization is
	// enabled) and normalize its outputs. Both consume only the merged
	// block's live-out set. Greedy computes it from whole-function
	// liveness (cached against the mutation version, recomputing only
	// when the intervening pass actually changed code); replay
	// substitutes the sets recorded with the decision — the working
	// function matches the recorded run's committed state instruction
	// for instruction, so they are exactly what ComputeLiveness would
	// return, and the three per-merge fixpoints disappear.
	rd := fo.replay
	if rd != nil && rd.Shape == nil {
		rd = nil // trace predates per-merge liveness recording
	}
	var lv *analysis.Liveness
	var out1 analysis.RegSet
	if rd != nil {
		out1 = regSetFrom(fc.NumRegs(), rd.Out1)
	} else {
		lv = fo.cache.Liveness(fc)
		out1 = lv.Out[hbC]
	}
	out2 := out1
	if fo.cfg.IterOpt {
		opt.OptimizeBlock(fc, hbC, out1)
		if rd != nil {
			out2 = regSetFrom(fc.NumRegs(), rd.Out2)
		} else {
			lv = fo.cache.Liveness(fc)
			out2 = lv.Out[hbC]
		}
	}

	// 6. Constraint check: reject the merge if the block no longer
	// fits. The measured shape is recorded (on merges and rejects
	// alike) so skeleton replay can re-check this exact precondition
	// against other capacity limits without redoing the measurement.
	var shape trips.BlockStats
	if rd != nil {
		trips.NormalizeOutputs(hbC, &analysis.Liveness{
			Out: map[*ir.Block]analysis.RegSet{hbC: out2}})
		shape = *rd.Shape
	} else {
		trips.NormalizeOutputs(hbC, lv)
		lv = fo.cache.Liveness(fc)
		shape = trips.MeasureWithFanout(hbC, lv, fo.cfg.Cons)
	}
	if err := fo.cfg.Cons.Check(shape); err != nil {
		fo.stats.Rejects++
		fo.record(Decision{Kind: DecReject, Cand: sC.ID, Merge: kind.name(),
			Reject: RejectCons, Shape: &shape, ChainHit: chainHit, ChainMiss: chainMiss})
		return false
	}
	if fo.rec != nil {
		fo.lastMerge.out1 = out1.AppendMembers(nil)
		fo.lastMerge.out2 = out2.AppendMembers(nil)
		fo.lastMerge.shape = shape
	}

	// 7. Transform the CFG (scratch side, then commit).
	if kind == mergePlain {
		fc.RemoveBlock(sC)
	}
	fc.RemoveUnreachable()
	if verify {
		if err := ir.Verify(fc); err != nil {
			// A malformed scratch function indicates a bug; reject the
			// merge rather than corrupting the working function.
			panic(fmt.Sprintf("core: scratch merge produced invalid IR: %v", err))
		}
	}

	// Commit.
	fo.f = fc
	fo.stats.Merges++
	switch kind {
	case mergeTail:
		fo.stats.TailDups++
	case mergePeel:
		fo.stats.Peels++
	case mergeUnroll:
		fo.stats.Unrolls++
		fo.unrolls[hbC.ID]++
	}

	// Record this layer's speculative renames under every surviving
	// branch this merge appended (identified by fresh BrIDs): such a
	// branch fires only when this layer's merge predicate held.
	if len(outRename) > 0 {
		byBr := fo.pending[hbC.ID]
		if byBr == nil {
			byBr = map[int32]map[ir.Reg]ir.Reg{}
			fo.pending[hbC.ID] = byBr
		}
		for _, in := range hbC.Instrs {
			if in.Op == ir.OpBr && in.BrID > brIDFloor {
				byBr[in.BrID] = outRename
			}
		}
	}
	// The converted branch is gone; drop its entry.
	if br.BrID != 0 {
		delete(fo.pending[hbC.ID], br.BrID)
	}
	return true
}

// regSetFrom rebuilds a RegSet from a recorded member list. Sized to
// cover both the function's registers and every recorded member, so a
// decoded trace can never index out of bounds.
func regSetFrom(n int, regs []ir.Reg) analysis.RegSet {
	for _, r := range regs {
		if int(r) >= n {
			n = int(r) + 1
		}
	}
	s := analysis.NewRegSet(n)
	for _, r := range regs {
		s.Add(r)
	}
	return s
}
