package core

import "repro/internal/ir"

// conjoiner materializes predicate conjunctions during if-conversion.
// When a successor's instructions are merged under an outer branch
// predicate (p, ps), unpredicated instructions become predicated on a
// normalized capture of p, and already-predicated instructions (q, qs)
// become predicated on the conjunction:
//
//	np = (p != 0) or (p == 0)  per ps   — captured at the branch site
//	nq = (q != 0) or (q == 0)  per qs   — computed at the use site
//	c  = np & nq
//
// The outer predicate is captured *at the position of the removed
// branch*, before any merged instruction runs: merged loop bodies
// routinely redefine the very register that held the loop condition
// (i = i+1; c = i<n), so reading p later would observe the next
// iteration's value. Normalizing to 0/1 also keeps conjunctions
// correct for arbitrary truthy values. Conjunctions are cached per
// inner predicate leg so repeated instructions share the computation.
type conjoiner struct {
	f     *ir.Function
	hb    *ir.Block
	np    ir.Reg // normalized outer predicate (NoReg = unconditional)
	zero  ir.Reg // cached constant 0 (NoReg until materialized)
	cache map[predLeg]ir.Reg
}

type predLeg struct {
	pred  ir.Reg
	sense bool
}

// newConjoiner captures the outer predicate (p, ps) by inserting its
// normalization at position at in hb (the slot of the removed
// branch). With p == NoReg the merge is unconditional and no glue is
// emitted.
func newConjoiner(f *ir.Function, hb *ir.Block, p ir.Reg, ps bool, at int) *conjoiner {
	c := &conjoiner{f: f, hb: hb, np: ir.NoReg, zero: ir.NoReg,
		cache: map[predLeg]ir.Reg{}}
	if !p.Valid() {
		return c
	}
	c.zero = f.NewReg()
	hb.InsertBefore(at, &ir.Instr{Op: ir.OpConst, Dst: c.zero, A: ir.NoReg, B: ir.NoReg, Pred: ir.NoReg, Imm: 0})
	op := ir.OpCmpNE
	if !ps {
		op = ir.OpCmpEQ
	}
	c.np = f.NewReg()
	hb.InsertBefore(at+1, &ir.Instr{Op: op, Dst: c.np, A: p, B: c.zero, Pred: ir.NoReg})
	return c
}

// normalize appends r' = (r != 0) or (r == 0) per sense at the end of
// the block (the current merge position).
func (c *conjoiner) normalize(r ir.Reg, sense bool) ir.Reg {
	op := ir.OpCmpNE
	if !sense {
		op = ir.OpCmpEQ
	}
	dst := c.f.NewReg()
	c.hb.Append(&ir.Instr{Op: op, Dst: dst, A: r, B: c.zero, Pred: ir.NoReg})
	return dst
}

// apply rewrites in's predicate to include the outer predicate,
// emitting any needed conjunction instructions into the hyperblock
// (which must happen before in is appended).
func (c *conjoiner) apply(in *ir.Instr) {
	if !c.np.Valid() {
		return // unconditional merge: predicates unchanged
	}
	if !in.Predicated() {
		in.Pred = c.np
		in.PredSense = true
		return
	}
	leg := predLeg{in.Pred, in.PredSense}
	conj, ok := c.cache[leg]
	if !ok {
		nq := c.normalize(in.Pred, in.PredSense)
		conj = c.f.NewReg()
		c.hb.Append(&ir.Instr{Op: ir.OpAnd, Dst: conj, A: c.np, B: nq, Pred: ir.NoReg})
		c.cache[leg] = conj
	}
	in.Pred = conj
	in.PredSense = true
}

// invalidate drops cached conjunctions whose inner predicate register
// was just redefined; later uses must recompute against the new
// value.
func (c *conjoiner) invalidate(def ir.Reg) {
	for leg := range c.cache {
		if leg.pred == def {
			delete(c.cache, leg)
		}
	}
}

// combine merges the instruction sequence body (typically a clone of
// a successor block's instructions) into hb, replacing the branch at
// brIdx: the branch is removed and the body becomes control-dependent
// on the branch's predicate, expressed as data dependences
// (if-conversion). Returns the number of auxiliary instructions
// emitted (predicate glue plus commit copies).
//
// Merged code is *speculated* the way EDGE compilers speculate
// hyperblock contents: an unpredicated pure body instruction executes
// unconditionally into a fresh (renamed) register, and a predicated
// commit copy moves the result into the original register only when
// the merge predicate holds. This keeps the computation itself off
// the predicate's dependence chain — only commits, memory operations,
// and exits wait for the predicate. Instructions that were already
// predicated inside the body, and loads (which must not fire
// speculatively with a wrong-path address), remain predicated on the
// conjunction of their own predicate and the merge predicate.
func combine(f *ir.Function, hb *ir.Block, brIdx int, body []*ir.Instr, initRename map[ir.Reg]ir.Reg) (int, map[ir.Reg]ir.Reg) {
	br := hb.Instrs[brIdx]
	if br.Op != ir.OpBr {
		panic("core: combine target is not a branch")
	}
	p, ps := br.Pred, br.PredSense
	hb.RemoveAt(brIdx)
	before := len(hb.Instrs)
	cj := newConjoiner(f, hb, p, ps, brIdx)

	if !cj.np.Valid() {
		// Unconditional merge: append the body verbatim (minus stale
		// null writes, which normalization re-derives).
		for _, in := range body {
			if in.Op == ir.OpNullW {
				continue
			}
			if in.Op == ir.OpBr {
				in.BrID = f.NewBrID()
			}
			hb.Append(in)
		}
		return len(hb.Instrs) - before - len(body), nil
	}

	// rename maps an original register to the fresh register holding
	// its speculative (merge-predicate-true) value; commitOrder keeps
	// deterministic commit sequence. initRename seeds the map with the
	// previous merge layer's speculative values (valid because this
	// merge's path implies the previous layer's predicate), which
	// chains loop-carried values across unrolled iterations without
	// waiting for their predicated commits.
	rename := map[ir.Reg]ir.Reg{}
	for k, v := range initRename {
		rename[k] = v
	}
	var commitOrder []ir.Reg
	// inCommitOrder tracks which originals this layer must commit;
	// inherited entries were committed by their own layer and only
	// need a commit here if this layer redefines them.
	inCommitOrder := map[ir.Reg]bool{}
	lookup := func(r ir.Reg) ir.Reg {
		if nr, ok := rename[r]; ok {
			return nr
		}
		return r
	}
	// commitReg flushes the pending speculative value of orig into the
	// original register under the merge predicate.
	commitReg := func(orig ir.Reg) {
		fresh, ok := rename[orig]
		if !ok {
			return
		}
		hb.Append(&ir.Instr{Op: ir.OpMov, Dst: orig, A: fresh, B: ir.NoReg,
			Pred: cj.np, PredSense: true})
		cj.invalidate(orig)
		delete(rename, orig)
		delete(inCommitOrder, orig)
		for i, r := range commitOrder {
			if r == orig {
				commitOrder = append(commitOrder[:i], commitOrder[i+1:]...)
				break
			}
		}
	}

	for _, in := range body {
		if in.Op == ir.OpNullW {
			continue // re-derived by output normalization
		}
		// Appended branches get fresh identities: clones inherit the
		// source branch's BrID, which must not alias the original.
		if in.Op == ir.OpBr {
			in.BrID = f.NewBrID()
		}
		// Rewrite uses through the rename map first.
		if in.A.Valid() {
			in.A = lookup(in.A)
		}
		if in.B.Valid() {
			in.B = lookup(in.B)
		}
		for i, a := range in.Args {
			in.Args[i] = lookup(a)
		}
		if in.Pred.Valid() {
			in.Pred = lookup(in.Pred)
		}

		switch {
		case (in.Op.Pure() || in.Op == ir.OpLoad) && !in.Predicated():
			// Speculate into a fresh register; commit later.
			orig := in.Dst
			fresh := f.NewReg()
			in.Dst = fresh
			hb.Append(in)
			if !inCommitOrder[orig] {
				commitOrder = append(commitOrder, orig)
				inCommitOrder[orig] = true
			}
			rename[orig] = fresh
		default:
			// Conditional (or effectful) instruction: it writes the
			// original register directly, so any pending speculative
			// value of that register must be committed first.
			if d := in.Def(); d.Valid() {
				commitReg(d)
			}
			cj.apply(in)
			hb.Append(in)
			if d := in.Def(); d.Valid() {
				cj.invalidate(d)
			}
		}
	}
	// Snapshot the speculative map before the final commits: a later
	// merge along this layer's branches may chain through it.
	outRename := make(map[ir.Reg]ir.Reg, len(rename))
	for k, v := range rename {
		outRename[k] = v
	}
	// Final commits for everything pending from this layer.
	for _, orig := range append([]ir.Reg(nil), commitOrder...) {
		commitReg(orig)
	}
	return len(hb.Instrs) - before - len(body), outRename
}
