package core

import (
	"encoding/json"
	"testing"

	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/trips"
)

// tracePrograms returns a spread of generated programs that exercise
// plain merges, tail duplication, peeling, unrolling, and (under
// tight constraints) rejects and oversize splits.
func tracePrograms(t *testing.T) []*ir.Program {
	t.Helper()
	var ps []*ir.Program
	for _, code := range [][]byte{
		{0, 1, 2, 0, 1, 2, 3, 1, 2, 0, 4, 2, 0, 1, 5, 3},
		{3, 1, 0, 6, 2, 2, 1, 9, 1, 0, 3, 3, 0, 2, 2, 6, 1, 1, 4, 0},
		{7, 5, 3, 1, 2, 4, 6, 8, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 1, 3, 5, 7, 2, 4},
	} {
		p, err := lang.Compile(genProgram(code))
		if err != nil {
			t.Fatalf("gen compile: %v", err)
		}
		ps = append(ps, p)
	}
	return ps
}

func traceConfigs() []Config {
	return []Config{
		{Cons: trips.Default(), IterOpt: true, HeadDup: true},
		{Cons: trips.Default(), IterOpt: false, HeadDup: false},
		{Cons: trips.Constraints{MaxInstrs: 24, MaxMemOps: 8, RegBanks: 4,
			MaxReadsPerBank: 8, MaxWritesPerBank: 8, FanoutFactor: 4},
			IterOpt: true, HeadDup: true, SplitOversize: true},
	}
}

// Recording must not perturb formation, and replaying the recorded
// trace on fresh clones must reproduce the recorded run exactly —
// twice, byte-identical IR dumps and equal statistics, with zero
// fallbacks.
func TestTraceReplayDeterministic(t *testing.T) {
	for pi, base := range tracePrograms(t) {
		for ci, cfg := range traceConfigs() {
			greedy := ir.CloneProgram(base)
			gst, gdeg, err := FormProgram(greedy, cfg, nil)
			if err != nil {
				t.Fatal(err)
			}
			if len(gdeg) > 0 {
				t.Fatalf("p%d c%d: greedy degraded: %v", pi, ci, gdeg)
			}
			want := ir.FormatProgram(greedy)

			rec := ir.CloneProgram(base)
			rst, _, tr, err := FormProgramTrace(rec, cfg, nil)
			if err != nil {
				t.Fatal(err)
			}
			if tr == nil {
				t.Fatalf("p%d c%d: no trace recorded", pi, ci)
			}
			if got := ir.FormatProgram(rec); got != want {
				t.Fatalf("p%d c%d: recording changed formation output", pi, ci)
			}
			if rst != gst {
				t.Fatalf("p%d c%d: recording changed stats: %+v vs %+v", pi, ci, rst, gst)
			}

			// The trace must survive a JSON round trip (it is cached as
			// a store artifact).
			raw, err := json.Marshal(tr)
			if err != nil {
				t.Fatal(err)
			}
			var tr2 ProgramTrace
			if err := json.Unmarshal(raw, &tr2); err != nil {
				t.Fatal(err)
			}

			for round, trace := range []*ProgramTrace{tr, &tr2} {
				rep := ir.CloneProgram(base)
				pst, pdeg, rs, err := ReplayProgram(rep, cfg, nil, trace)
				if err != nil {
					t.Fatal(err)
				}
				if len(pdeg) > 0 {
					t.Fatalf("p%d c%d r%d: replay degraded: %v", pi, ci, round, pdeg)
				}
				if rs.Fallbacks != 0 {
					t.Fatalf("p%d c%d r%d: unexpected fallbacks: %+v", pi, ci, round, rs)
				}
				if got := ir.FormatProgram(rep); got != want {
					t.Fatalf("p%d c%d r%d: replay IR differs from greedy:\n--- want\n%s\n--- got\n%s",
						pi, ci, round, want, got)
				}
				if pst != gst {
					t.Fatalf("p%d c%d r%d: replay stats %+v, greedy %+v", pi, ci, round, pst, gst)
				}
			}
		}
	}
}

// A trace replayed under different concrete parameters must detect
// the precondition miss, count a fallback, and still produce exactly
// what a full greedy run under the new parameters produces — no
// degradation, no drift.
func TestTraceReplayFallbackOnParameterChange(t *testing.T) {
	recCfg := Config{Cons: trips.Default(), IterOpt: true, HeadDup: true}
	tight := recCfg
	tight.Cons = trips.Constraints{MaxInstrs: 10, MaxMemOps: 4, RegBanks: 4,
		MaxReadsPerBank: 2, MaxWritesPerBank: 2, FanoutFactor: 4}

	fellSomewhere := false
	for pi, base := range tracePrograms(t) {
		rec := ir.CloneProgram(base)
		_, _, tr, err := FormProgramTrace(rec, recCfg, nil)
		if err != nil {
			t.Fatal(err)
		}

		greedy := ir.CloneProgram(base)
		gst, gdeg, err := FormProgram(greedy, tight, nil)
		if err != nil {
			t.Fatal(err)
		}

		rep := ir.CloneProgram(base)
		pst, pdeg, rs, err := ReplayProgram(rep, tight, nil, tr)
		if err != nil {
			t.Fatal(err)
		}
		if rs.Fallbacks > 0 {
			fellSomewhere = true
		}
		if len(pdeg) != len(gdeg) {
			t.Fatalf("p%d: replay degradations %v, greedy %v", pi, pdeg, gdeg)
		}
		if got, want := ir.FormatProgram(rep), ir.FormatProgram(greedy); got != want {
			t.Fatalf("p%d: fallback IR differs from greedy under tight constraints", pi)
		}
		if pst != gst {
			t.Fatalf("p%d: fallback stats %+v, greedy %+v", pi, pst, gst)
		}
	}
	if !fellSomewhere {
		t.Fatal("tight constraints never forced a fallback; test is vacuous")
	}
}

// A stale trace (fingerprint mismatch) must not be replayed at all.
func TestTraceReplayRejectsStaleFingerprint(t *testing.T) {
	cfg := Config{Cons: trips.Default(), IterOpt: true, HeadDup: true}
	base := tracePrograms(t)[0]
	rec := ir.CloneProgram(base)
	_, _, tr, err := FormProgramTrace(rec, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, ft := range tr.Funcs {
		ft.Fingerprint ^= 0xdeadbeef
	}
	greedy := ir.CloneProgram(base)
	if _, _, err := FormProgram(greedy, cfg, nil); err != nil {
		t.Fatal(err)
	}
	rep := ir.CloneProgram(base)
	_, _, rs, err := ReplayProgram(rep, cfg, nil, tr)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Replayed != 0 {
		t.Fatalf("replayed %d functions with corrupted fingerprints", rs.Replayed)
	}
	if got, want := ir.FormatProgram(rep), ir.FormatProgram(greedy); got != want {
		t.Fatal("fingerprint-miss fallback diverged from greedy")
	}
}
