package core

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/sim/functional"
	"repro/internal/trips"
)

// bigStraightSrc produces a large basic block (long expression chains)
// followed by small ones, so tight constraints reject the big
// candidate unless splitting is enabled.
const bigStraightSrc = `
func chain(n) {
  var a = n + 1;
  if (a > 0) { a = a + 2; } else { a = a - 2; }
  // The join block below is one large basic block: too big to merge
  // whole under tight constraints, splittable in halves.
  var b = a * 3 + n; var c = b * 5 - a; var d = c * 7 + b;
  var e = d * 11 - c; var f = e * 13 + d; var g = f * 17 - e;
  var h = g * 19 + f; var i2 = h * 23 - g; var j = i2 * 29 + h;
  var k = j * 31 - i2; var l = k * 37 + j; var m = l * 41 - k;
  var o = m * 43 + l; var p = o * 47 - m; var q = p * 53 + o;
  return q;
}
func main(n) {
  var q = chain(n);
  print(q);
  return q;
}`

func TestSplitOversizeExtension(t *testing.T) {
	cons := trips.Constraints{MaxInstrs: 16, MaxMemOps: 8, RegBanks: 4,
		MaxReadsPerBank: 8, MaxWritesPerBank: 8}

	base, err := lang.Compile(bigStraightSrc)
	if err != nil {
		t.Fatal(err)
	}
	want, wantOut, _, err := functional.RunProgram(ir.CloneProgram(base), "main", 9)
	if err != nil {
		t.Fatal(err)
	}

	// Without splitting: merges of the big block are rejected.
	p1 := ir.CloneProgram(base)
	st1, _, _ := FormProgram(p1, Config{Cons: cons, IterOpt: false, HeadDup: true}, nil)
	// With splitting: the rejected candidate is split and halves
	// merged.
	p2 := ir.CloneProgram(base)
	st2, _, _ := FormProgram(p2, Config{Cons: cons, IterOpt: false, HeadDup: true,
		SplitOversize: true}, nil)
	if st2.Splits == 0 {
		t.Fatalf("expected splits with SplitOversize; stats %+v vs %+v", st2, st1)
	}
	if err := ir.VerifyProgram(p2); err != nil {
		t.Fatal(err)
	}
	got, gotOut, _, err := functional.RunProgram(p2, "main", 9)
	if err != nil {
		t.Fatal(err)
	}
	if got != want || len(gotOut) != len(wantOut) || gotOut[0] != wantOut[0] {
		t.Fatalf("splitting broke semantics: %d vs %d", got, want)
	}
}

func TestSplitOversizeCandidateDirect(t *testing.T) {
	prog, err := lang.Compile(bigStraightSrc)
	if err != nil {
		t.Fatal(err)
	}
	f := prog.Func("chain")
	fo := NewFormer(f, Config{Cons: trips.Default()})
	var big *ir.Block
	for _, b := range f.Blocks {
		if big == nil || len(b.Instrs) > len(big.Instrs) {
			big = b
		}
	}
	before := len(big.Instrs)
	nb := fo.SplitOversizeCandidate(big)
	if nb == nil {
		t.Fatal("big block should split")
	}
	if len(big.Instrs)+len(nb.Instrs) != before+1 { // +1 for the new branch
		t.Fatalf("instructions lost: %d + %d vs %d", len(big.Instrs), len(nb.Instrs), before)
	}
	if err := ir.Verify(fo.Result()); err != nil {
		t.Fatal(err)
	}
	// Tiny blocks refuse to split.
	small := &ir.Block{ID: -1, Name: "tiny", Fn: f}
	small.Instrs = append(small.Instrs, &ir.Instr{Op: ir.OpRet, Dst: ir.NoReg,
		A: ir.NoReg, B: ir.NoReg, Pred: ir.NoReg})
	if fo.SplitOversizeCandidate(small) != nil {
		t.Fatal("tiny block must not split")
	}
}

// TestNoChainAblation: disabling cross-layer chaining must keep
// semantics identical while chain hits drop to zero.
func TestNoChainAblation(t *testing.T) {
	src := `
func main(n) {
  var s = 0;
  for (var i = 0; i < n; i = i + 1) {
    var d = (i & 3) - 1;
    if (d < 0) { d = -d; }
    s = s + d;
  }
  print(s);
  return s;
}`
	base, err := lang.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	want, _, _, err := functional.RunProgram(ir.CloneProgram(base), "main", 37)
	if err != nil {
		t.Fatal(err)
	}

	pOn := ir.CloneProgram(base)
	stOn, _, _ := FormProgram(pOn, Config{Cons: trips.Default(), IterOpt: true, HeadDup: true}, nil)
	pOff := ir.CloneProgram(base)
	stOff, _, _ := FormProgram(pOff, Config{Cons: trips.Default(), IterOpt: true, HeadDup: true,
		NoChain: true}, nil)

	if stOn.ChainHits == 0 {
		t.Fatalf("chaining should engage by default: %+v", stOn)
	}
	if stOff.ChainHits != 0 {
		t.Fatalf("NoChain must suppress chaining: %+v", stOff)
	}
	for name, p := range map[string]*ir.Program{"chain": pOn, "nochain": pOff} {
		got, _, _, err := functional.RunProgram(p, "main", 37)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got != want {
			t.Fatalf("%s: %d != %d", name, got, want)
		}
	}
}
