// Package core implements the paper's primary contribution:
// convergent hyperblock formation (Maher, Smith, Burger, McKinley —
// MICRO 2006, Figure 5).
//
// The algorithm grows each hyperblock incrementally: starting from a
// seed basic block it repeatedly selects a successor (via a
// pluggable block-selection policy), attempts the merge in scratch
// space — if-converting the successor, optionally running scalar
// optimizations, normalizing outputs, and checking the TRIPS
// structural constraints — and commits the merge only if the
// resulting block is legal. Code duplication is applied as needed:
//
//   - tail duplication removes side entrances to acyclic regions;
//   - head duplication generalizes it to back edges, implementing
//     loop peeling (merging a loop header into a predecessor outside
//     the loop) and loop unrolling (merging a block with itself along
//     its own back edge);
//   - unrolling appends copies of the loop's saved original body one
//     iteration at a time, avoiding the powers-of-two limitation.
package core

import (
	"repro/internal/analysis"
	"repro/internal/ir"
	"repro/internal/profile"
	"repro/internal/trips"
)

// Stats are the static formation counters the paper reports per
// benchmark as m/t/u/p (Table 1).
type Stats struct {
	// Merges counts successful block merges (m).
	Merges int
	// TailDups counts merges that required tail duplication (t).
	TailDups int
	// Unrolls counts loop iterations added by head-duplication
	// unrolling (u).
	Unrolls int
	// Peels counts loop iterations peeled by head duplication (p).
	Peels int
	// Attempts and Rejects count trial merges and constraint
	// rejections (not in the paper's tables; useful diagnostics).
	Attempts int
	Rejects  int
	// ChainHits/ChainMisses count unroll merges that did / did not
	// chain through the previous layer's speculative renames.
	ChainHits   int
	ChainMisses int
	// Splits counts §9 basic-block splits (SplitOversize extension).
	Splits int
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Merges += other.Merges
	s.TailDups += other.TailDups
	s.Unrolls += other.Unrolls
	s.Peels += other.Peels
	s.Attempts += other.Attempts
	s.Rejects += other.Rejects
	s.ChainHits += other.ChainHits
	s.ChainMisses += other.ChainMisses
	s.Splits += other.Splits
}

// Context is the information a block-selection policy may consult.
type Context struct {
	F     *ir.Function
	HB    *ir.Block
	Prof  *profile.FuncProfile
	Loops *analysis.LoopForest
	Cons  trips.Constraints
}

// Policy selects which candidate successor to merge next (the paper's
// SelectBest, §5). Implementations live in internal/policy.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Prepare is called once before expanding each seed hyperblock;
	// path-based (VLIW) policies use it to run their prepass.
	Prepare(ctx *Context)
	// Select returns the index into cands of the candidate to try
	// next, or -1 to stop expanding this hyperblock. The selected
	// candidate is removed from the worklist by the caller.
	Select(ctx *Context, cands []*ir.Block) int
}

// Config controls a formation run.
type Config struct {
	// Cons are the structural constraints each hyperblock must obey.
	Cons trips.Constraints
	// Policy picks merge candidates; nil defaults to greedy
	// first-candidate (breadth-first) order.
	Policy Policy
	// IterOpt interleaves scalar optimization with merging (the
	// paper's merged "(…O)" phases). When false, blocks are only
	// optimized by discrete phases outside formation.
	IterOpt bool
	// HeadDup enables head duplication (peeling and unrolling).
	// When false the algorithm degenerates to classical incremental
	// if-conversion with tail duplication only.
	HeadDup bool
	// Prof supplies profile data to the policy; may be nil.
	Prof *profile.FuncProfile
	// MaxUnrollPerLoop bounds head-duplication unrolling of one
	// header (default 64).
	MaxUnrollPerLoop int
	// MaxMergesPerBlock bounds total merges into one hyperblock
	// (default 256) as a convergence backstop.
	MaxMergesPerBlock int
	// MaxRepeatPerCandidate bounds repeated merges of the same
	// candidate block into the same hyperblock (repeated peeling),
	// default 64.
	MaxRepeatPerCandidate int
	// SplitOversize enables the paper's §9 "basic block splitting"
	// extension: when a candidate is rejected because it does not
	// fit, and the candidate is itself large, it is split in two and
	// the first half retried.
	SplitOversize bool
	// NoChain disables cross-layer speculative-rename chaining
	// (ablation knob; formation stays correct, merged loop-carried
	// values just wait for their predicated commits).
	NoChain bool
	// Checkpoint, when non-nil, is polled between merge attempts and
	// between seed expansions: the first non-nil error it returns
	// aborts formation cooperatively (the error propagates out of
	// FormFunction/FormProgram). Drivers set it to ctx.Err so a
	// deadline or request cancellation stops a long convergence loop
	// instead of relying on goroutine abandonment. It is excluded
	// from content-addressed cache keys (it never affects the result
	// of a completed formation).
	Checkpoint func() error
}

func (c Config) withDefaults() Config {
	if c.Cons.MaxInstrs == 0 {
		c.Cons = trips.Default()
	}
	if c.MaxUnrollPerLoop == 0 {
		c.MaxUnrollPerLoop = 64
	}
	if c.MaxMergesPerBlock == 0 {
		c.MaxMergesPerBlock = 256
	}
	if c.MaxRepeatPerCandidate == 0 {
		c.MaxRepeatPerCandidate = 64
	}
	return c
}

// savedBody is a detached snapshot of a loop body used for
// incremental unrolling: the block's instructions plus branch targets
// recorded as stable block IDs (resolved against whatever function
// clone the snapshot is materialized into).
type savedBody struct {
	instrs  []*ir.Instr // detached clones; Br targets are nil
	targets []int       // block ID per branch, in branch order
}

func snapshotBody(b *ir.Block) *savedBody {
	s := &savedBody{}
	for _, in := range b.Instrs {
		cp := in.Clone()
		if cp.Op == ir.OpBr {
			s.targets = append(s.targets, cp.Target.ID)
			cp.Target = nil
		}
		s.instrs = append(s.instrs, cp)
	}
	return s
}

// materialize returns fresh instruction clones with branch targets
// resolved in f; ok is false if a target block no longer exists.
func (s *savedBody) materialize(f *ir.Function) ([]*ir.Instr, bool) {
	out := make([]*ir.Instr, len(s.instrs))
	ti := 0
	for i, in := range s.instrs {
		cp := in.Clone()
		if cp.Op == ir.OpBr {
			t := f.BlockByID(s.targets[ti])
			ti++
			if t == nil {
				return nil, false
			}
			cp.Target = t
		}
		out[i] = cp
	}
	return out, true
}
