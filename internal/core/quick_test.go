package core

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/analysis"
	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/sim/functional"
	"repro/internal/trips"
)

// genProgram builds a random (but always terminating) tl program from
// a byte string: a loop whose body is a chain of if/else arms doing
// random arithmetic on a handful of variables.
func genProgram(code []byte) string {
	var sb strings.Builder
	sb.WriteString("func main(n) {\n var a = 1; var b = 2; var c = 3;\n")
	sb.WriteString(" for (var i = 0; i < n; i = i + 1) {\n")
	vars := []string{"a", "b", "c"}
	ops := []string{"+", "-", "*", "&", "|", "^"}
	conds := []string{"(i & 1) == 0", "a > b", "b < c", "(i % 3) == 1", "c >= 0"}
	for i := 0; i+3 < len(code) && i < 40; i += 4 {
		v := vars[int(code[i])%len(vars)]
		w := vars[int(code[i+1])%len(vars)]
		op := ops[int(code[i+2])%len(ops)]
		if code[i+3]%3 == 0 {
			cond := conds[int(code[i+3]/3)%len(conds)]
			fmt.Fprintf(&sb, "  if (%s) { %s = %s %s %s; } else { %s = %s + 1; }\n",
				cond, v, v, op, w, w, w)
		} else {
			fmt.Fprintf(&sb, "  %s = %s %s %s;\n", v, v, op, w)
		}
	}
	sb.WriteString(" }\n print(a); print(b);\n return a + b * 3 + c * 7;\n}\n")
	return sb.String()
}

// Property: convergent hyperblock formation preserves the semantics
// of randomly generated programs under every configuration.
func TestQuickFormationPreservesRandomPrograms(t *testing.T) {
	configs := []Config{
		{Cons: trips.Default(), IterOpt: false, HeadDup: false},
		{Cons: trips.Default(), IterOpt: true, HeadDup: true},
		{Cons: trips.Constraints{MaxInstrs: 24, MaxMemOps: 8, RegBanks: 4,
			MaxReadsPerBank: 8, MaxWritesPerBank: 8}, IterOpt: true, HeadDup: true},
	}
	f := func(code []byte, seed uint8) bool {
		src := genProgram(code)
		base, err := lang.Compile(src)
		if err != nil {
			t.Logf("gen compile: %v\n%s", err, src)
			return false
		}
		n := int64(seed % 23)
		want, wantOut, _, err := functional.RunProgram(ir.CloneProgram(base), "main", n)
		if err != nil {
			return false
		}
		for ci, cfg := range configs {
			p := ir.CloneProgram(base)
			FormProgram(p, cfg, nil)
			if err := ir.VerifyProgram(p); err != nil {
				t.Logf("config %d: %v", ci, err)
				return false
			}
			got, gotOut, _, err := functional.RunProgram(p, "main", n)
			if err != nil {
				t.Logf("config %d run: %v", ci, err)
				return false
			}
			if got != want || len(gotOut) != len(wantOut) {
				t.Logf("config %d: got %d want %d (n=%d)\n%s", ci, got, want, n, src)
				return false
			}
			for i := range wantOut {
				if gotOut[i] != wantOut[i] {
					t.Logf("config %d: output differs", ci)
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40}
	if testing.Short() {
		cfg.MaxCount = 8
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: formation output always satisfies the structural
// constraints it was given.
func TestQuickFormationRespectsConstraints(t *testing.T) {
	cons := trips.Constraints{MaxInstrs: 32, MaxMemOps: 8, RegBanks: 4,
		MaxReadsPerBank: 8, MaxWritesPerBank: 8}
	f := func(code []byte) bool {
		src := genProgram(code)
		base, err := lang.Compile(src)
		if err != nil {
			return false
		}
		FormProgram(base, Config{Cons: cons, IterOpt: true, HeadDup: true}, nil)
		for _, fn := range base.OrderedFuncs() {
			lv := analysisLiveness(fn)
			for _, b := range fn.Blocks {
				if err := cons.LegalBlock(b, lv); err != nil {
					// Only *formed* (merged) blocks must obey the
					// constraints; source basic blocks may exceed
					// them (the paper notes block splitting as future
					// work).
					if b.Hyper {
						t.Logf("%s: %v", b, err)
						return false
					}
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30}
	if testing.Short() {
		cfg.MaxCount = 6
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// analysisLiveness is a local shorthand.
func analysisLiveness(f *ir.Function) *analysis.Liveness {
	return analysis.ComputeLiveness(f)
}
