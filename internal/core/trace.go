package core

import (
	"hash/fnv"

	"repro/internal/ir"
	"repro/internal/profile"
	"repro/internal/trips"
)

// This file implements symbolic formation skeletons: a recording of
// the convergent formation loop's decision sequence that can be
// replayed against a fresh pre-formation clone far more cheaply than
// re-running the greedy search. The trace is symbolic in the
// request-bound parameters — block capacity limits (MaxInstrs,
// MaxMemOps, per-bank read/write budgets) are not baked in; instead
// each decision carries the structural precondition that justified
// it, and replay re-checks exactly those preconditions against the
// concrete parameters. Any miss aborts the whole function's replay
// and falls back to the full greedy run, so replay is never less
// correct than formation, only faster.
//
// What makes replay cheap:
//   - rejected merge attempts are not re-executed: the recorded block
//     shape is re-checked against the concrete constraints (a few
//     integer compares) instead of re-running clone + if-convert +
//     liveness + measure;
//   - accepted merges run in place on the working clone instead of on
//     a scratch clone (greedy needs scratch because an attempt may
//     fail; replay already knows the outcome, and if the concrete
//     constraints reject it after all, the corrupted clone is
//     discarded and greedy runs from the pristine snapshot);
//   - whole-function liveness is never recomputed: each committed
//     merge carries the merged block's recorded live-out sets and
//     final measured shape. Replay reproduces the recorded run's
//     committed states instruction for instruction, so the recorded
//     sets are exactly what ComputeLiveness would return — and the
//     three per-merge liveness fixpoints are the dominant cost of the
//     greedy inner loop;
//   - no candidate worklists, policy calls, loop forests, or RPO
//     rescans: the decision list is the worklist;
//   - the per-merge scratch IR verifier is skipped (replay output is
//     still verified once by GuardFunction, like any formed function).

// Decision kinds (Decision.Kind).
const (
	DecMerge  = "m" // committed merge
	DecReject = "r" // rejected merge attempt
	DecSplit  = "s" // §9 oversize candidate split
)

// Reject reasons (Decision.Reject).
const (
	RejectCons = "cons" // structural constraint check failed
	RejectMat  = "mat"  // unroll snapshot no longer materializes
	RejectBr   = "br"   // converted branch not found in scratch clone
)

// Merge kind names (Decision.Merge), matching mergeKind.
const (
	KindPlain  = "plain"
	KindTail   = "tail"
	KindPeel   = "peel"
	KindUnroll = "unroll"
)

// Decision is one recorded step of a hyperblock's expansion.
type Decision struct {
	Kind string `json:"k"`
	// Cand is the candidate block's stable ID.
	Cand int `json:"c"`
	// Merge is the recorded merge classification (merge decisions;
	// also set on rejects so unroll bookkeeping replays faithfully).
	Merge string `json:"m,omitempty"`
	// Reject is the reject reason (reject decisions only).
	Reject string `json:"rj,omitempty"`
	// Shape is the merged block's measured resources — at a
	// constraint reject, or after normalization on a committed merge.
	// Replay re-checks this shape against the concrete constraints:
	// for a reject, still failing ⇒ the greedy run would have made
	// the same decision; for a merge, still passing ⇒ the merge
	// stands without re-measuring. Either check flipping is a
	// precondition miss and replay falls back. The shape depends on
	// Constraints only through FanoutFactor, which is part of the
	// skeleton cache key, so the recorded shape is exact for every
	// instantiation the trace is consulted for.
	Shape *trips.BlockStats `json:"sh,omitempty"`
	// Out1 and Out2 are the merged block's live-out registers after
	// combine and after iterative optimization (sorted), recorded on
	// committed merges. They feed OptimizeBlock and NormalizeOutputs
	// at replay in place of the whole-function liveness fixpoint; a
	// nil slice with Shape set means the set was genuinely empty.
	Out1 []ir.Reg `json:"o1,omitempty"`
	Out2 []ir.Reg `json:"o2,omitempty"`
	// ChainHit/ChainMiss replay the rename-chain counters that a
	// constraint-rejected attempt bumped before its check ran.
	ChainHit  bool `json:"ch,omitempty"`
	ChainMiss bool `json:"cm,omitempty"`
}

// SeedTrace is the decision sequence of one ExpandBlock pass. Seeds
// whose expansion recorded no decisions are omitted from the trace:
// they neither mutate the function nor mark it Hyper.
type SeedTrace struct {
	Seed      int        `json:"seed"`
	Decisions []Decision `json:"d,omitempty"`
}

// FuncTrace is the recorded formation of one function.
type FuncTrace struct {
	// Fingerprint is a structural hash of the pre-formation function.
	// A mismatch at replay means the skeleton was recorded against
	// different input IR (stale cache entry, schema drift) and replay
	// must not proceed.
	Fingerprint uint64      `json:"fp"`
	Seeds       []SeedTrace `json:"seeds,omitempty"`
}

// ProgramTrace is a replayable skeleton of FormProgram's decisions,
// keyed by function name. Functions that degraded during recording
// have no entry and fall back to greedy formation at replay (which
// deterministically degrades the same way).
type ProgramTrace struct {
	Funcs map[string]*FuncTrace `json:"funcs"`
}

// Decisions returns the total decision count, a cheap size proxy.
func (t *ProgramTrace) Decisions() int {
	n := 0
	for _, ft := range t.Funcs {
		for i := range ft.Seeds {
			n += len(ft.Seeds[i].Decisions)
		}
	}
	return n
}

// FingerprintFunction hashes the structural identity of f: block IDs
// and order, every instruction field, and branch targets. Two
// functions with equal fingerprints are (up to hash collision)
// structurally identical, so a decision trace recorded against one
// replays against the other.
func FingerprintFunction(f *ir.Function) uint64 {
	h := fnv.New64a()
	buf := make([]byte, 0, 64)
	w8 := func(v int64) {
		for i := 0; i < 8; i++ {
			buf = append(buf, byte(v>>(8*i)))
		}
	}
	w8(int64(len(f.Params)))
	for _, b := range f.Blocks {
		w8(int64(b.ID))
		w8(int64(len(b.Instrs)))
		for _, in := range b.Instrs {
			w8(int64(in.Op))
			w8(int64(in.Dst))
			w8(int64(in.A))
			w8(int64(in.B))
			w8(in.Imm)
			w8(int64(in.Pred))
			if in.PredSense {
				w8(1)
			} else {
				w8(0)
			}
			if in.Target != nil {
				w8(int64(in.Target.ID))
			} else {
				w8(-1)
			}
			w8(int64(in.BrID))
			w8(int64(len(in.Callee)))
			buf = append(buf, in.Callee...)
			for _, a := range in.Args {
				w8(int64(a))
			}
			if len(buf) > 4096 {
				h.Write(buf)
				buf = buf[:0]
			}
		}
	}
	h.Write(buf)
	return h.Sum64()
}

// traceRecorder accumulates a FuncTrace while the greedy formation
// loop runs. cur indexes the open seed's entry in ft.Seeds plus one;
// zero means the current seed has recorded nothing yet (its entry is
// created on first decision so empty seeds never hit the trace).
type traceRecorder struct {
	ft   *FuncTrace
	seed int
	cur  int
}

// beginSeed opens a new (lazily materialized) seed scope.
func (fo *Former) beginSeed(id int) {
	if fo.rec != nil {
		fo.rec.seed, fo.rec.cur = id, 0
	}
}

// record appends d to the open seed's decision list.
func (fo *Former) record(d Decision) {
	r := fo.rec
	if r == nil {
		return
	}
	if r.cur == 0 {
		r.ft.Seeds = append(r.ft.Seeds, SeedTrace{Seed: r.seed})
		r.cur = len(r.ft.Seeds)
	}
	st := &r.ft.Seeds[r.cur-1]
	st.Decisions = append(st.Decisions, d)
}

func (k mergeKind) name() string {
	switch k {
	case mergePlain:
		return KindPlain
	case mergeTail:
		return KindTail
	case mergePeel:
		return KindPeel
	default:
		return KindUnroll
	}
}

func mergeKindByName(s string) (mergeKind, bool) {
	switch s {
	case KindPlain:
		return mergePlain, true
	case KindTail:
		return mergeTail, true
	case KindPeel:
		return mergePeel, true
	case KindUnroll:
		return mergeUnroll, true
	}
	return 0, false
}

// FormFunctionTrace is FormFunction with decision recording: it
// additionally returns the replayable trace of the run. The trace is
// nil when formation was canceled mid-run.
func FormFunctionTrace(f *ir.Function, cfg Config) (*ir.Function, Stats, *FuncTrace, error) {
	return formFunction(f, cfg, true)
}

// ReplayStats counts skeleton replay outcomes across one program.
type ReplayStats struct {
	// Replayed counts functions formed purely by trace replay.
	Replayed int `json:"replayed"`
	// Fallbacks counts functions where a precondition miss (or a
	// missing/mismatched trace) forced a full greedy run.
	Fallbacks int `json:"fallbacks"`
}

// ReplayProgram is FormProgram driven by a recorded trace: each
// function replays its decision sequence against the concrete
// parameters in cfg, falling back to the full greedy FormFunction on
// any precondition miss. The formed program, statistics, and
// degradations are indistinguishable from a greedy run with the same
// cfg; only the cost differs.
func ReplayProgram(p *ir.Program, cfg Config, prof *profile.Profile, tr *ProgramTrace) (Stats, []Degradation, ReplayStats, error) {
	var total Stats
	var degraded []Degradation
	var rs ReplayStats
	for _, name := range p.FuncOrder {
		c := cfg
		if prof != nil {
			c.Prof = prof.Get(name)
		}
		var st Stats
		var cerr error
		fn := p.Funcs[name]
		var ft *FuncTrace
		if tr != nil {
			ft = tr.Funcs[name]
		}
		fell := false
		nf, deg := GuardFunction(fn, "formation", func(f *ir.Function) *ir.Function {
			var formed *ir.Function
			formed, st, fell, cerr = replayOrForm(f, c, ft)
			return formed
		})
		if cerr != nil {
			return total, degraded, rs, cerr
		}
		if fell {
			rs.Fallbacks++
		} else {
			rs.Replayed++
		}
		if deg != nil {
			degraded = append(degraded, *deg)
			st = Stats{}
		}
		nf.Prog = p
		p.Funcs[name] = nf
		total.Add(st)
	}
	return total, degraded, rs, nil
}

// replayOrForm replays ft against a clone of f, or falls back to the
// greedy FormFunction when ft is absent, stale, or misses a
// precondition. It reports whether the greedy fallback ran.
func replayOrForm(f *ir.Function, cfg Config, ft *FuncTrace) (*ir.Function, Stats, bool, error) {
	if ft == nil || ft.Fingerprint != FingerprintFunction(f) {
		nf, st, err := FormFunction(f, cfg)
		return nf, st, true, err
	}
	// Replay mutates its working clone in place (including partially,
	// when a replayed merge fails the concrete constraint check), so
	// the greedy fallback needs the untouched input. GuardFunction's
	// own snapshot is reserved for panic recovery.
	pristine := ir.CloneFunction(f)
	fo := NewFormer(f, cfg)
	ok := true
	for i := range ft.Seeds {
		if fo.checkpoint() != nil {
			break
		}
		if !fo.replaySeed(&ft.Seeds[i]) {
			ok = false
			break
		}
	}
	if fo.err != nil {
		// Canceled: propagate like FormFunction (caller discards).
		return fo.f, fo.stats, false, fo.err
	}
	if ok {
		return fo.f, fo.stats, false, nil
	}
	nf, st, err := FormFunction(pristine, cfg)
	return nf, st, true, err
}

// replaySeed replays one recorded ExpandBlock pass. It returns false
// on any precondition miss; the working function may then be
// partially mutated and must be discarded by the caller.
func (fo *Former) replaySeed(st *SeedTrace) bool {
	hb := fo.f.BlockByID(st.Seed)
	if hb == nil {
		return false
	}
	merges := 0
	for i := range st.Decisions {
		d := &st.Decisions[i]
		switch d.Kind {
		case DecMerge:
			kind, kok := mergeKindByName(d.Merge)
			s := fo.f.BlockByID(d.Cand)
			if !kok || s == nil || !fo.replayMerge(hb, s, kind, d) {
				return false
			}
			merges++
			if hb = fo.f.BlockByID(st.Seed); hb == nil {
				return false
			}
		case DecReject:
			if !fo.replayReject(hb, d) {
				return false
			}
		case DecSplit:
			s := fo.f.BlockByID(d.Cand)
			if s == nil || s == hb || s.HasCall() ||
				!fo.cfg.SplitOversize ||
				len(s.Instrs) <= fo.cfg.Cons.MaxInstrs/4 {
				return false
			}
			if fo.SplitOversizeCandidate(s) == nil {
				return false
			}
		default:
			return false
		}
	}
	if merges > 0 {
		hb.Hyper = true
	}
	return true
}

// replayReject re-applies a rejected attempt's statistics and
// re-checks its recorded precondition against the concrete
// parameters. A recorded constraint reject whose shape now fits means
// the greedy run would have accepted the merge — that is a
// precondition miss, not a cheaper path.
func (fo *Former) replayReject(hb *ir.Block, d *Decision) bool {
	fo.stats.Attempts++
	switch d.Reject {
	case RejectCons:
		if d.ChainHit {
			fo.stats.ChainHits++
		}
		if d.ChainMiss {
			fo.stats.ChainMisses++
		}
		if d.Shape == nil || fo.cfg.Cons.Check(*d.Shape) == nil {
			return false
		}
		fo.stats.Rejects++
	case RejectMat:
		// The snapshot materializes against structure fully determined
		// by the committed prefix, which replay reproduces exactly; a
		// first-attempt materialize failure is impossible (the
		// snapshot is taken from live blocks), so the snapshot must
		// already exist here.
		if fo.saved[hb.ID] == nil {
			return false
		}
		fo.stats.Rejects++
	case RejectBr:
		// Structural-only reject: Attempts was the sole counter.
	default:
		return false
	}
	// A rejected unroll attempt permanently retires the header as a
	// candidate (tried). Recording only reaches the unroll-snapshot
	// path via a successful earlier unroll or as the attempt that
	// takes the snapshot itself, both reproduced above, so no
	// bookkeeping beyond counters is needed here.
	return true
}

// replayMerge re-executes a recorded committed merge in place on the
// working function. Structural prechecks stand in for the greedy
// loop's classification; the concrete constraint check still runs
// inside mergeExec (against the recorded shape, which is exact for
// this instantiation — see Decision.Shape), so a parameter change
// that invalidates the merge surfaces as a false return (and the
// caller falls back).
func (fo *Former) replayMerge(hb, s *ir.Block, kind mergeKind, d *Decision) bool {
	fo.stats.Attempts++
	switch kind {
	case mergeUnroll:
		if s != hb || !fo.cfg.HeadDup || fo.unrolls[hb.ID] >= fo.cfg.MaxUnrollPerLoop {
			return false
		}
	case mergePlain:
		if s == hb || fo.f.NumPredEdges(s) != 1 {
			return false
		}
	default:
		if s == hb {
			return false
		}
	}
	if kind == mergeUnroll {
		if _, ok := fo.saved[hb.ID]; !ok {
			fo.saved[hb.ID] = snapshotBody(hb)
		}
	}
	// In place: the working function is the scratch function. On
	// success mergeExec's commit is a no-op reassignment; on failure
	// the function is corrupt and the caller discards it.
	fo.replay = d
	ok := fo.mergeExec(fo.f, hb, s, kind, false)
	fo.replay = nil
	return ok
}
