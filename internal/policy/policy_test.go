package policy

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/profile"
	"repro/internal/sim/functional"
	"repro/internal/trips"
)

// hotColdSrc has a hot arm (taken ~95% of iterations) and a cold arm.
const hotColdSrc = `
func main(n) {
  var s = 0;
  for (var i = 0; i < n; i = i + 1) {
    if (i % 50 == 49) { s = s * 3; } else { s = s + i; }
  }
  print(s);
  return s;
}`

func compileWithProfile(t *testing.T, src string, args ...int64) (*ir.Program, *profile.Profile) {
	t.Helper()
	prog, err := lang.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	prof, _, err := profile.Collect(ir.CloneProgram(prog), "main", args...)
	if err != nil {
		t.Fatal(err)
	}
	return prog, prof
}

func ctxFor(t *testing.T, prog *ir.Program, prof *profile.Profile) *core.Context {
	t.Helper()
	f := prog.Func("main")
	return &core.Context{
		F:     f,
		HB:    f.Entry(),
		Prof:  prof.Get("main"),
		Loops: analysis.Loops(f),
		Cons:  trips.Default(),
	}
}

func TestBreadthFirstOrder(t *testing.T) {
	prog, prof := compileWithProfile(t, hotColdSrc, 100)
	ctx := ctxFor(t, prog, prof)
	bf := BreadthFirst{}
	bf.Prepare(ctx)
	cands := ctx.F.Blocks[:3]
	if got := bf.Select(ctx, cands); got != 0 {
		t.Fatalf("BF must pick index 0, got %d", got)
	}
	if got := bf.Select(ctx, nil); got != -1 {
		t.Fatal("BF on empty list must return -1")
	}
	if bf.Name() != "breadth-first" {
		t.Fatal("name")
	}
}

func TestDepthFirstPicksHottest(t *testing.T) {
	prog, prof := compileWithProfile(t, hotColdSrc, 200)
	f := prog.Func("main")
	fp := prof.Get("main")
	// Find the loop-body branch block: the block with two successors
	// of very different frequency.
	var hb, hot, cold *ir.Block
	for _, b := range f.Blocks {
		ss := b.Succs()
		if len(ss) != 2 {
			continue
		}
		f0, f1 := fp.EdgeFreq(b, ss[0]), fp.EdgeFreq(b, ss[1])
		if f0+f1 < 100 || f0 == f1 {
			continue
		}
		hb = b
		if f0 > f1 {
			hot, cold = ss[0], ss[1]
		} else {
			hot, cold = ss[1], ss[0]
		}
	}
	if hb == nil {
		t.Fatal("no biased branch found")
	}
	ctx := &core.Context{F: f, HB: hb, Prof: fp, Loops: analysis.Loops(f), Cons: trips.Default()}
	df := DepthFirst{}
	df.Prepare(ctx)
	got := df.Select(ctx, []*ir.Block{cold, hot})
	if got != 1 {
		t.Fatalf("DF must pick the hot arm (index 1), got %d", got)
	}
	// With only the cold candidate left, DF must refuse it.
	if got := df.Select(ctx, []*ir.Block{cold}); got != -1 {
		t.Fatalf("DF must refuse cold candidates, got %d", got)
	}
}

func TestDepthFirstWithoutProfile(t *testing.T) {
	prog, _ := compileWithProfile(t, hotColdSrc, 10)
	f := prog.Func("main")
	ctx := &core.Context{F: f, HB: f.Entry(), Loops: analysis.Loops(f), Cons: trips.Default()}
	df := DepthFirst{}
	cands := f.Blocks[:3]
	if got := df.Select(ctx, cands); got != 2 {
		t.Fatalf("profile-less DF must pick LIFO (2), got %d", got)
	}
}

func TestVLIWPrepassAdmitsHotPath(t *testing.T) {
	prog, prof := compileWithProfile(t, hotColdSrc, 200)
	f := prog.Func("main")
	fp := prof.Get("main")
	ctx := &core.Context{F: f, HB: f.Entry(), Prof: fp, Loops: analysis.Loops(f), Cons: trips.Default()}
	v := &VLIW{}
	v.Prepare(ctx)
	if len(v.admitted) == 0 {
		t.Fatal("VLIW prepass admitted nothing")
	}
	// The seed must be admitted with rank 0.
	if r, ok := v.admitted[ctx.HB.ID]; !ok || r != 0 {
		t.Fatalf("seed not admitted first: %v %v", r, ok)
	}
}

func TestVLIWSelectRespectsAdmission(t *testing.T) {
	prog, prof := compileWithProfile(t, hotColdSrc, 200)
	f := prog.Func("main")
	ctx := &core.Context{F: f, HB: f.Entry(), Prof: prof.Get("main"),
		Loops: analysis.Loops(f), Cons: trips.Default()}
	v := &VLIW{}
	v.Prepare(ctx)
	// A candidate list containing only the seed itself must be
	// refused (no unrolling under the acyclic VLIW heuristic).
	if got := v.Select(ctx, []*ir.Block{ctx.HB}); got != -1 {
		t.Fatalf("VLIW must refuse self-merge, got %d", got)
	}
}

func TestVLIWSmallBudgetAdmitsLess(t *testing.T) {
	prog, prof := compileWithProfile(t, hotColdSrc, 200)
	f := prog.Func("main")
	big := &core.Context{F: f, HB: f.Entry(), Prof: prof.Get("main"),
		Loops: analysis.Loops(f), Cons: trips.Default()}
	small := &core.Context{F: f, HB: f.Entry(), Prof: prof.Get("main"),
		Loops: analysis.Loops(f),
		Cons:  trips.Constraints{MaxInstrs: 6, MaxMemOps: 32, RegBanks: 4, MaxReadsPerBank: 8, MaxWritesPerBank: 8}}
	vBig, vSmall := &VLIW{}, &VLIW{}
	vBig.Prepare(big)
	vSmall.Prepare(small)
	if len(vSmall.admitted) > len(vBig.admitted) {
		t.Fatalf("smaller budget admitted more blocks: %d > %d",
			len(vSmall.admitted), len(vBig.admitted))
	}
}

func TestDepHeight(t *testing.T) {
	f := ir.NewFunction("f", 2)
	b := f.NewBlock("entry")
	bd := ir.NewBuilder(f, b)
	// Chain of 3 dependent adds: height 4 including the ret.
	x := bd.Bin(ir.OpAdd, f.Params[0], f.Params[1])
	y := bd.Bin(ir.OpAdd, x, f.Params[1])
	z := bd.Bin(ir.OpAdd, y, f.Params[1])
	bd.Ret(z)
	if h := depHeight(b); h != 4 {
		t.Fatalf("depHeight = %d, want 4", h)
	}
	// Independent instructions: height stays small.
	f2 := ir.NewFunction("g", 2)
	b2 := f2.NewBlock("entry")
	bd2 := ir.NewBuilder(f2, b2)
	bd2.Bin(ir.OpAdd, f2.Params[0], f2.Params[1])
	bd2.Bin(ir.OpSub, f2.Params[0], f2.Params[1])
	bd2.Bin(ir.OpMul, f2.Params[0], f2.Params[1])
	bd2.Ret(f2.Params[0])
	if h := depHeight(b2); h != 1 {
		t.Fatalf("independent depHeight = %d, want 1", h)
	}
}

// End-to-end: all three policies drive formation to correct code.
func TestPoliciesPreserveSemantics(t *testing.T) {
	prog, prof := compileWithProfile(t, hotColdSrc, 100)
	wantV, wantOut, _, err := functional.RunProgram(ir.CloneProgram(prog), "main", 100)
	if err != nil {
		t.Fatal(err)
	}
	pols := []core.Policy{BreadthFirst{}, DepthFirst{}, &VLIW{}}
	for _, pol := range pols {
		p := ir.CloneProgram(prog)
		cfg := core.Config{Cons: trips.Default(), IterOpt: true, HeadDup: true, Policy: pol}
		core.FormProgram(p, cfg, prof)
		if err := ir.VerifyProgram(p); err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
		gotV, gotOut, _, err := functional.RunProgram(p, "main", 100)
		if err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
		if gotV != wantV || len(gotOut) != len(wantOut) {
			t.Fatalf("%s: semantics broken: %d vs %d", pol.Name(), gotV, wantV)
		}
	}
}

// BF merges both arms; DF with profile excludes the cold arm, so the
// formed code should differ (DF leaves more blocks).
func TestBFMergesMoreThanDF(t *testing.T) {
	prog, prof := compileWithProfile(t, hotColdSrc, 200)
	formWith := func(pol core.Policy) int {
		p := ir.CloneProgram(prog)
		cfg := core.Config{Cons: trips.Default(), IterOpt: true, HeadDup: false, Policy: pol}
		st, _, _ := core.FormProgram(p, cfg, prof)
		return st.Merges
	}
	bf := formWith(BreadthFirst{})
	df := formWith(DepthFirst{})
	if df > bf {
		t.Fatalf("DF merged more than BF: %d > %d", df, bf)
	}
}
