// Package policy implements the block-selection heuristics the paper
// evaluates (§5, Table 2) as core.Policy implementations:
//
//   - BreadthFirst: greedy FIFO merging of all successors, level by
//     level. The paper's best EDGE heuristic — it removes conditional
//     branches and limits the serialization cost of tail duplication
//     by including all paths.
//   - DepthFirst: follows the most frequently executed successor
//     chain, excluding infrequently-taken blocks. Includes the most
//     useful instructions but performs more tail duplication.
//   - VLIW: the Mahlke-style path-based heuristic — a prepass
//     enumerates acyclic paths through the region, prioritizes them
//     by execution frequency, dependence height, and resource
//     consumption, and only blocks on selected paths are merged.
package policy

import (
	"repro/internal/core"
	"repro/internal/ir"
)

// BreadthFirst merges candidates in discovery (FIFO) order.
type BreadthFirst struct{}

// Name implements core.Policy.
func (BreadthFirst) Name() string { return "breadth-first" }

// Prepare implements core.Policy.
func (BreadthFirst) Prepare(*core.Context) {}

// Select implements core.Policy: the oldest candidate first.
func (BreadthFirst) Select(_ *core.Context, cands []*ir.Block) int {
	if len(cands) == 0 {
		return -1
	}
	return 0
}

// DepthFirst merges the most frequently executed candidate first and
// refuses candidates whose entry edge is cold relative to the
// hyperblock's execution count.
type DepthFirst struct {
	// MinFraction is the minimum edge-frequency : block-frequency
	// ratio for a candidate to be considered (default 0.05). With no
	// profile available every candidate is eligible and selection
	// degenerates to LIFO (deepest-first) order.
	MinFraction float64
}

// Name implements core.Policy.
func (DepthFirst) Name() string { return "depth-first" }

// Prepare implements core.Policy.
func (DepthFirst) Prepare(*core.Context) {}

// Select implements core.Policy.
func (d DepthFirst) Select(ctx *core.Context, cands []*ir.Block) int {
	if len(cands) == 0 {
		return -1
	}
	if ctx.Prof == nil {
		return len(cands) - 1 // LIFO: deepest discovery first
	}
	minFrac := d.MinFraction
	if minFrac == 0 {
		minFrac = 0.05
	}
	hbFreq := ctx.Prof.BlockFreq(ctx.HB)
	best, bestFreq := -1, int64(-1)
	for i, s := range cands {
		f := ctx.Prof.EdgeFreq(ctx.HB, s)
		if f > bestFreq {
			best, bestFreq = i, f
		}
	}
	if best < 0 {
		return -1
	}
	// Cold-candidate cutoff: depth-first excludes rarely taken
	// blocks (which is what forces the extra tail duplication the
	// paper analyzes in bzip2_3).
	if hbFreq > 0 && float64(bestFreq) < minFrac*float64(hbFreq) {
		return -1
	}
	return best
}
