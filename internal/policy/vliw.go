package policy

import (
	"math"

	"repro/internal/core"
	"repro/internal/ir"
)

// VLIW implements the Mahlke et al. path-based block-selection
// heuristic used by hyperblock compilers for statically scheduled
// machines. A prepass enumerates acyclic paths through the region
// rooted at the seed block, scores each path by
//
//	priority = freq × (bestHeight / height)^α × (bestSize / size)^β
//
// (frequent, short-dependence-height, low-resource paths first), and
// admits blocks path by path while the estimated region size fits the
// instruction budget. During expansion only admitted blocks are
// selected, in admission order. Back edges are never followed: the
// classical heuristic forms hyperblocks over acyclic regions, so it
// neither unrolls nor peels.
type VLIW struct {
	// MaxPathLen bounds path enumeration depth (default 12).
	MaxPathLen int
	// MaxPaths bounds the number of enumerated paths (default 256).
	MaxPaths int
	// HeightExp and SizeExp are the α and β priority exponents
	// (default 1 each).
	HeightExp float64
	SizeExp   float64

	admitted map[int]int // block ID -> admission rank
}

// Name implements core.Policy.
func (*VLIW) Name() string { return "vliw" }

type vliwPath struct {
	blocks []*ir.Block
	freq   float64
	height int
	size   int
}

// Prepare implements core.Policy: the path-enumeration prepass.
func (v *VLIW) Prepare(ctx *core.Context) {
	maxLen := v.MaxPathLen
	if maxLen == 0 {
		maxLen = 12
	}
	maxPaths := v.MaxPaths
	if maxPaths == 0 {
		maxPaths = 256
	}
	v.admitted = map[int]int{}

	var paths []*vliwPath
	var walk func(b *ir.Block, cur []*ir.Block, freq float64)
	seen := map[*ir.Block]bool{}
	walk = func(b *ir.Block, cur []*ir.Block, freq float64) {
		if len(paths) >= maxPaths {
			return
		}
		cur = append(cur, b)
		seen[b] = true
		defer func() { seen[b] = false }()

		terminal := len(cur) >= maxLen || b.HasCall()
		var nexts []*ir.Block
		if !terminal {
			for _, s := range b.Succs() {
				// Acyclic region: no revisits, no back edges.
				if seen[s] || ctx.Loops.IsBackEdge(b, s) {
					continue
				}
				nexts = append(nexts, s)
			}
		}
		if len(nexts) == 0 {
			p := &vliwPath{blocks: append([]*ir.Block(nil), cur...), freq: freq}
			for _, pb := range p.blocks {
				p.height += depHeight(pb)
				p.size += len(pb.Instrs)
			}
			paths = append(paths, p)
			return
		}
		// Split frequency across successors by profile.
		var total int64
		for _, s := range nexts {
			total += edgeFreq(ctx, b, s) + 1
		}
		for _, s := range nexts {
			frac := float64(edgeFreq(ctx, b, s)+1) / float64(total)
			walk(s, cur, freq*frac)
		}
	}
	seedFreq := 1.0
	if ctx.Prof != nil {
		if f := ctx.Prof.BlockFreq(ctx.HB); f > 0 {
			seedFreq = float64(f)
		}
	}
	walk(ctx.HB, nil, seedFreq)
	if len(paths) == 0 {
		return
	}

	// Score paths.
	bestH, bestS := math.MaxInt64, math.MaxInt64
	for _, p := range paths {
		if p.height < bestH && p.height > 0 {
			bestH = p.height
		}
		if p.size < bestS && p.size > 0 {
			bestS = p.size
		}
	}
	alpha := v.HeightExp
	if alpha == 0 {
		alpha = 1
	}
	beta := v.SizeExp
	if beta == 0 {
		beta = 1
	}
	prio := func(p *vliwPath) float64 {
		pr := p.freq
		if p.height > 0 && bestH < math.MaxInt64 {
			pr *= math.Pow(float64(bestH)/float64(p.height), alpha)
		}
		if p.size > 0 && bestS < math.MaxInt64 {
			pr *= math.Pow(float64(bestS)/float64(p.size), beta)
		}
		return pr
	}
	// Insertion sort by descending priority (path counts are small).
	for i := 1; i < len(paths); i++ {
		for j := i; j > 0 && prio(paths[j-1]) < prio(paths[j]); j-- {
			paths[j-1], paths[j] = paths[j], paths[j-1]
		}
	}

	// Admit blocks path by path under the size budget.
	budget := ctx.Cons.MaxInstrs
	used := 0
	rank := 0
	inSet := map[int]bool{}
	for _, p := range paths {
		extra := 0
		for _, b := range p.blocks {
			if !inSet[b.ID] {
				extra += len(b.Instrs)
			}
		}
		if used > 0 && used+extra > budget {
			continue
		}
		for _, b := range p.blocks {
			if !inSet[b.ID] {
				inSet[b.ID] = true
				v.admitted[b.ID] = rank
				rank++
			}
		}
		used += extra
	}
}

// Select implements core.Policy: the admitted candidate with the
// lowest admission rank; unadmitted candidates stop expansion in
// that direction.
func (v *VLIW) Select(ctx *core.Context, cands []*ir.Block) int {
	best, bestRank := -1, math.MaxInt64
	for i, s := range cands {
		if s == ctx.HB {
			continue // acyclic heuristic: no unrolling
		}
		r, ok := v.admitted[s.ID]
		if ok && r < bestRank {
			best, bestRank = i, r
		}
	}
	return best
}

func edgeFreq(ctx *core.Context, from, to *ir.Block) int64 {
	if ctx.Prof == nil {
		return 0
	}
	return ctx.Prof.EdgeFreq(from, to)
}

// depHeight estimates a block's dependence height: the length of its
// longest data-dependence chain, assuming unit latency.
func depHeight(b *ir.Block) int {
	depth := map[ir.Reg]int{}
	max := 0
	var buf []ir.Reg
	for _, in := range b.Instrs {
		d := 0
		buf = in.Uses(buf)
		for _, r := range buf {
			if depth[r] > d {
				d = depth[r]
			}
		}
		d++
		if dst := in.Def(); dst.Valid() {
			depth[dst] = d
		}
		if d > max {
			max = d
		}
	}
	return max
}
