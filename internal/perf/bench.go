// Package perf holds the repository's performance harness: a registry
// of the headline benchmarks with per-benchmark allocation budgets, a
// machine-readable report format (BENCH_4.json), and the comparison
// logic behind the CI bench-gate.
//
// The benchmark bodies live here — not in a _test.go file — so that
// both `go test -bench` (via bench_test.go wrappers) and cmd/hbbench
// (via testing.Benchmark) run the exact same code.
package perf

import (
	"fmt"
	"runtime"
	"sort"
	"testing"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/opt"
	"repro/internal/profile"
	"repro/internal/regalloc"
	"repro/internal/sim/timing"
	"repro/internal/trips"
	"repro/internal/workloads"
)

// Spec is one registered benchmark.
type Spec struct {
	// Name is hierarchical ("CycleSim/WarmRun"); bench_test.go splits
	// on the first slash to group sub-benchmarks.
	Name string
	// AllocBudget is the maximum allocs/op the bench-gate allows, or
	// -1 for no allocation budget. The budget is exact: the steady
	// state either allocates or it does not, so there is no tolerance.
	AllocBudget int64
	// Fn is the benchmark body. Every body calls b.ReportAllocs.
	Fn func(b *testing.B)
}

// Specs returns the benchmark registry. The slice is freshly built on
// each call; callers may reorder it.
func Specs() []Spec {
	return []Spec{
		{Name: "Formation/Frontend", AllocBudget: -1, Fn: benchFrontend},
		{Name: "Formation/Profile", AllocBudget: -1, Fn: benchProfile},
		{Name: "Formation/Form", AllocBudget: -1, Fn: benchForm},
		{Name: "Formation/Regalloc", AllocBudget: -1, Fn: benchRegalloc},
		{Name: "Formation/Full", AllocBudget: -1, Fn: benchFormationFull},
		{Name: "Formation/Instantiate", AllocBudget: -1, Fn: benchInstantiate},
		{Name: "CycleSim/Clone", AllocBudget: -1, Fn: benchClone},
		{Name: "CycleSim/ColdRun", AllocBudget: -1, Fn: benchColdRun},
		// The tentpole guarantee: once the machine is warm, re-running
		// a program does not allocate (issue ring, pooled frames,
		// converged predictor table, reused Uses buffers).
		{Name: "CycleSim/WarmRun", AllocBudget: 0, Fn: benchWarmRun},
	}
}

// mustWorkload fetches a micro workload or fails the benchmark.
func mustWorkload(b *testing.B, name string) workloads.Workload {
	b.Helper()
	w, err := workloads.ByName(workloads.Micro(), name)
	if err != nil {
		b.Fatal(err)
	}
	return *w
}

// formationOpts is the headline formation configuration: the fully
// convergent ordering on gzip_1 with a training profile.
func formationOpts(w workloads.Workload) compiler.Options {
	return compiler.Options{
		Ordering:    compiler.OrderIUPO1,
		ProfileFn:   "main",
		ProfileArgs: w.TrainArgs,
	}
}

// benchFrontend measures parse + check + for-unroll + lowering.
func benchFrontend(b *testing.B) {
	w := mustWorkload(b, "gzip_1")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lang.CompileUnrolled(w.Source, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// prepared returns gzip_1 lowered, scalar-optimized, and
// call-split — the program state formation starts from.
func prepared(b *testing.B, w workloads.Workload) *ir.Program {
	b.Helper()
	prog, err := lang.CompileUnrolled(w.Source, 4)
	if err != nil {
		b.Fatal(err)
	}
	opt.OptimizeProgram(prog)
	compiler.SplitCallsProgram(prog)
	return prog
}

// benchProfile measures the functional-simulator training run.
func benchProfile(b *testing.B) {
	w := mustWorkload(b, "gzip_1")
	prog := prepared(b, w)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := profile.Collect(ir.CloneProgram(prog), "main", w.TrainArgs...); err != nil {
			b.Fatal(err)
		}
	}
}

// benchForm measures convergent hyperblock formation proper
// (merge/if-convert iteration with head duplication and iterative
// optimization), excluding the front end and profiling.
func benchForm(b *testing.B) {
	w := mustWorkload(b, "gzip_1")
	prog := prepared(b, w)
	prof, _, err := profile.Collect(ir.CloneProgram(prog), "main", w.TrainArgs...)
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.Config{Cons: trips.Default(), HeadDup: true, IterOpt: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.FormProgram(ir.CloneProgram(prog), cfg, prof)
	}
}

// benchRegalloc measures register allocation + reverse if-conversion
// on the fully formed program.
func benchRegalloc(b *testing.B) {
	w := mustWorkload(b, "gzip_1")
	res, err := compiler.Compile(w.Source, formationOpts(w))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		regalloc.AllocateProgram(ir.CloneProgram(res.Prog), regalloc.Options{})
	}
}

// benchFormationFull measures the whole pipeline, matching the
// historical BenchmarkFormation body.
func benchFormationFull(b *testing.B) {
	w := mustWorkload(b, "gzip_1")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := compiler.Compile(w.Source, formationOpts(w)); err != nil {
			b.Fatal(err)
		}
	}
}

// benchInstantiate measures the same pipeline as Formation/Full when
// a recorded skeleton is replayed instead of searched: the formation
// decisions are re-applied with only their preconditions re-checked,
// and the profile training run is skipped (replay never consults it).
// The ratio Instantiate/Full is the two-tier cache's per-request win
// on a skeleton hit.
func benchInstantiate(b *testing.B) {
	w := mustWorkload(b, "gzip_1")
	rec := formationOpts(w)
	rec.RecordFormTrace = true
	res, err := compiler.Compile(w.Source, rec)
	if err != nil {
		b.Fatal(err)
	}
	if res.FormTrace == nil {
		b.Fatal("no skeleton recorded")
	}
	opts := formationOpts(w)
	opts.FormTrace = res.FormTrace
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := compiler.Compile(w.Source, opts)
		if err != nil {
			b.Fatal(err)
		}
		if r.Replay.Fallbacks != 0 {
			b.Fatalf("skeleton replay fell back (%d functions)", r.Replay.Fallbacks)
		}
	}
}

// compiledMatrix compiles the cycle-simulator workload once.
func compiledMatrix(b *testing.B) (*ir.Program, workloads.Workload) {
	b.Helper()
	w := mustWorkload(b, "matrix_1")
	res, err := compiler.Compile(w.Source, formationOpts(w))
	if err != nil {
		b.Fatal(err)
	}
	return res.Prog, w
}

// benchClone measures program cloning, the per-cell setup cost the
// engine pays before every simulation.
func benchClone(b *testing.B) {
	prog, _ := compiledMatrix(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ir.CloneProgram(prog)
	}
}

// benchColdRun measures clone + machine construction + full run,
// matching the historical BenchmarkCycleSim body.
func benchColdRun(b *testing.B) {
	prog, w := compiledMatrix(b)
	b.ReportAllocs()
	b.ResetTimer()
	var instrs int64
	for i := 0; i < b.N; i++ {
		m := timing.New(ir.CloneProgram(prog), timing.DefaultConfig())
		if _, err := m.Run("main", w.Args...); err != nil {
			b.Fatal(err)
		}
		instrs += m.Stats.Executed
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds(), "instrs/s")
}

// benchWarmRun measures the steady state: one machine re-running the
// program, so pooled frames, the issue ring, and the converged
// predictor table are all reused. This is the path with the exact
// 0 allocs/op budget.
func benchWarmRun(b *testing.B) {
	prog, w := compiledMatrix(b)
	m := timing.New(prog, timing.DefaultConfig())
	// Warm: converge the predictor table and size every scratch
	// buffer before measuring.
	for i := 0; i < 3; i++ {
		m.Output = m.Output[:0]
		if _, err := m.Run("main", w.Args...); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Output = m.Output[:0]
		if _, err := m.Run("main", w.Args...); err != nil {
			b.Fatal(err)
		}
	}
}

// Result is one benchmark's measurement in a Report.
type Result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// AllocBudget mirrors the registry's budget at measurement time
	// (-1 = ungated), so a committed baseline documents its gates.
	AllocBudget int64 `json:"alloc_budget"`
}

// Report is the machine-readable document hbbench emits
// (BENCH_4.json).
type Report struct {
	Schema    string   `json:"schema"`
	GoVersion string   `json:"go"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	Results   []Result `json:"results"`
	// Extras are scalar non-timing measurements recorded alongside the
	// benchmarks (e.g. the hotkey-profile skeleton hit-rate measured by
	// an hbload run). Compare only notes them: each has its own gate
	// where it is measured (hbload -min-skeleton-rate in CI).
	Extras map[string]float64 `json:"extras,omitempty"`
}

// Schema is the current report schema identifier.
const Schema = "hbbench/1"

// Collect runs every registered benchmark through testing.Benchmark
// and assembles the report. The caller controls iteration time via
// the standard -test.benchtime flag (see cmd/hbbench).
func Collect(progress func(name string)) Report {
	return CollectMatching(nil, progress)
}

// CollectMatching is Collect restricted to benchmark names containing
// the given substring ("" or nil-equivalent: all). Compare gates only
// names present in both reports, so a filtered report can be checked
// against a subset baseline (hbbench -run).
func CollectMatching(match func(name string) bool, progress func(name string)) Report {
	rep := Report{
		Schema:    Schema,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	for _, s := range Specs() {
		if match != nil && !match(s.Name) {
			continue
		}
		if progress != nil {
			progress(s.Name)
		}
		r := testing.Benchmark(s.Fn)
		rep.Results = append(rep.Results, Result{
			Name:        s.Name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			AllocBudget: s.AllocBudget,
		})
	}
	return rep
}

// Lookup returns the named result, or nil.
func (r *Report) Lookup(name string) *Result {
	for i := range r.Results {
		if r.Results[i].Name == name {
			return &r.Results[i]
		}
	}
	return nil
}

// Compare gates fresh against base: every fresh result must respect
// its allocation budget exactly, and any result present in both
// reports must not regress ns/op by more than nsTol (0.25 = 25%).
// The returned violations are empty when the gate passes; notes lists
// non-fatal observations (e.g. benchmarks missing from the baseline).
func Compare(fresh, base *Report, nsTol float64) (violations, notes []string) {
	for _, f := range fresh.Results {
		if f.AllocBudget >= 0 && f.AllocsPerOp > f.AllocBudget {
			violations = append(violations,
				fmt.Sprintf("%s: %d allocs/op exceeds budget %d",
					f.Name, f.AllocsPerOp, f.AllocBudget))
		}
		b := base.Lookup(f.Name)
		if b == nil {
			notes = append(notes, fmt.Sprintf("%s: not in baseline, ns/op ungated", f.Name))
			continue
		}
		if limit := b.NsPerOp * (1 + nsTol); f.NsPerOp > limit {
			violations = append(violations,
				fmt.Sprintf("%s: %.0f ns/op regresses baseline %.0f by more than %.0f%%",
					f.Name, f.NsPerOp, b.NsPerOp, 100*nsTol))
		}
	}
	for _, b := range base.Results {
		if fresh.Lookup(b.Name) == nil {
			notes = append(notes, fmt.Sprintf("%s: in baseline but not measured", b.Name))
		}
	}
	for k, v := range base.Extras {
		if _, ok := fresh.Extras[k]; !ok {
			notes = append(notes, fmt.Sprintf("extra %s=%g: recorded in baseline, gated where measured", k, v))
		}
	}
	sort.Strings(violations)
	sort.Strings(notes)
	return violations, notes
}
