package perf

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfiles starts CPU profiling when cpuFile is non-empty and
// returns a stop function that finishes the CPU profile and writes
// the heap profile (when memFile is non-empty). The CLIs defer stop
// in main, so profiles are written on clean exits only — an os.Exit
// failure path leaves no partial profile behind.
func StartProfiles(cpuFile, memFile string) (stop func(), err error) {
	var cpu *os.File
	if cpuFile != "" {
		cpu, err = os.Create(cpuFile)
		if err != nil {
			return nil, fmt.Errorf("perf: %w", err)
		}
		if err := pprof.StartCPUProfile(cpu); err != nil {
			cpu.Close()
			return nil, fmt.Errorf("perf: %w", err)
		}
	}
	return func() {
		if cpu != nil {
			pprof.StopCPUProfile()
			cpu.Close()
		}
		if memFile != "" {
			f, err := os.Create(memFile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "perf:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "perf:", err)
			}
		}
	}, nil
}
