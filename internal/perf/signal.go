package perf

import (
	"os"
	"os/signal"
	"sync"
	"syscall"
)

// ShutdownExitCode returns the conventional exit status for a process
// killed by sig: 128+signum (130 for SIGINT, 143 for SIGTERM), so
// supervisors and shell scripts can tell a signal-interrupted run from
// an ordinary failure (exit 1) or a usage error (exit 2).
func ShutdownExitCode(sig os.Signal) int {
	if s, ok := sig.(syscall.Signal); ok {
		return 128 + int(s)
	}
	return 128 + int(syscall.SIGTERM)
}

// OnShutdownSignal installs a SIGINT/SIGTERM handler that runs flush
// once and exits with ShutdownExitCode. It exists so the long-running
// CLIs (hbchaos, hbfuzz, experiments, hbbench) do not lose their
// partial traces and -cpuprofile/-memprofile output when an operator
// interrupts a campaign: a deferred stop function never runs through
// os.Exit, so the flush must happen on the signal path itself.
//
// The returned cancel uninstalls the handler; call it (or defer it)
// before the normal exit path flushes the same state, so a signal
// arriving during shutdown cannot double-flush.
func OnShutdownSignal(flush func(sig os.Signal)) (cancel func()) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		select {
		case sig := <-ch:
			if flush != nil {
				flush(sig)
			}
			os.Exit(ShutdownExitCode(sig))
		case <-done:
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			signal.Stop(ch)
			close(done)
		})
	}
}
