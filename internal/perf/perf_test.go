package perf

import (
	"strings"
	"testing"
)

func report(results ...Result) *Report {
	return &Report{Schema: Schema, Results: results}
}

func TestCompareAllocBudgetIsExact(t *testing.T) {
	fresh := report(Result{Name: "CycleSim/WarmRun", NsPerOp: 100, AllocsPerOp: 1, AllocBudget: 0})
	base := report(Result{Name: "CycleSim/WarmRun", NsPerOp: 100, AllocsPerOp: 0, AllocBudget: 0})
	v, _ := Compare(fresh, base, 0.25)
	if len(v) != 1 || !strings.Contains(v[0], "exceeds budget") {
		t.Fatalf("want one alloc-budget violation, got %v", v)
	}
	// Budget -1 means ungated no matter how much is allocated.
	fresh.Results[0].AllocBudget = -1
	if v, _ := Compare(fresh, base, 0.25); len(v) != 0 {
		t.Fatalf("ungated benchmark must not violate: %v", v)
	}
}

func TestCompareNsTolerance(t *testing.T) {
	base := report(Result{Name: "Formation/Full", NsPerOp: 1000, AllocBudget: -1})
	ok := report(Result{Name: "Formation/Full", NsPerOp: 1249, AllocBudget: -1})
	if v, _ := Compare(ok, base, 0.25); len(v) != 0 {
		t.Fatalf("within tolerance must pass: %v", v)
	}
	bad := report(Result{Name: "Formation/Full", NsPerOp: 1300, AllocBudget: -1})
	v, _ := Compare(bad, base, 0.25)
	if len(v) != 1 || !strings.Contains(v[0], "regresses baseline") {
		t.Fatalf("want one ns/op violation, got %v", v)
	}
}

func TestCompareMissingEntriesAreNotes(t *testing.T) {
	fresh := report(Result{Name: "New/Bench", NsPerOp: 10, AllocBudget: -1})
	base := report(Result{Name: "Old/Bench", NsPerOp: 10, AllocBudget: -1})
	v, notes := Compare(fresh, base, 0.25)
	if len(v) != 0 {
		t.Fatalf("missing entries must not fail the gate: %v", v)
	}
	if len(notes) != 2 {
		t.Fatalf("want notes for both directions, got %v", notes)
	}
}

func TestSpecsRegistry(t *testing.T) {
	specs := Specs()
	seen := map[string]bool{}
	warmGated := false
	for _, s := range specs {
		if s.Fn == nil {
			t.Fatalf("%s has no body", s.Name)
		}
		if seen[s.Name] {
			t.Fatalf("duplicate benchmark name %s", s.Name)
		}
		seen[s.Name] = true
		if s.Name == "CycleSim/WarmRun" && s.AllocBudget == 0 {
			warmGated = true
		}
	}
	if !warmGated {
		t.Fatal("CycleSim/WarmRun must carry the exact 0 allocs/op budget")
	}
}
