package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Figure7Point is one scatter point: the reduction in cycles and in
// blocks of one (benchmark, configuration) pair versus basic blocks.
type Figure7Point struct {
	Workload       string
	Config         string
	BlockReduction int64
	CycleReduction int64
}

// Figure7Result is the scatter plus the linear fit.
type Figure7Result struct {
	Points []Figure7Point
	// Slope and Intercept are the least-squares fit cycleReduction ≈
	// Slope*blockReduction + Intercept; R2 is the coefficient of
	// determination (the paper reports r² = 0.78).
	Slope     float64
	Intercept float64
	R2        float64
	// R2Trimmed refits after removing the 10% of points with the
	// largest absolute residuals (the paper likewise notes "a few
	// outliers"); TrimmedOut lists the removed points.
	R2Trimmed  float64
	TrimmedOut []Figure7Point
}

// Figure7 derives the paper's Figure 7 from Table 1's data: cycle
// count reduction plotted against block count reduction for every
// (benchmark, configuration) pair, with a linear regression.
func Figure7(t1 *Table1Result) *Figure7Result {
	res := &Figure7Result{}
	for _, row := range t1.Rows {
		for _, c := range t1.Configs {
			m := row.PerConfig[c]
			res.Points = append(res.Points, Figure7Point{
				Workload:       row.Name,
				Config:         c,
				BlockReduction: row.BBBlocks - m.Blocks,
				CycleReduction: row.BBCycles - m.Cycles,
			})
		}
	}
	xs := make([]float64, len(res.Points))
	ys := make([]float64, len(res.Points))
	for i, p := range res.Points {
		xs[i] = float64(p.BlockReduction)
		ys[i] = float64(p.CycleReduction)
	}
	res.Slope, res.Intercept, res.R2 = LinearRegression(xs, ys)

	// Trimmed fit: drop the 10% largest-residual points and refit.
	type resid struct {
		i int
		r float64
	}
	rs := make([]resid, len(xs))
	for i := range xs {
		rs[i] = resid{i, math.Abs(ys[i] - (res.Slope*xs[i] + res.Intercept))}
	}
	sort.Slice(rs, func(a, b int) bool { return rs[a].r > rs[b].r })
	drop := len(rs) / 10
	dropped := map[int]bool{}
	for _, e := range rs[:drop] {
		dropped[e.i] = true
		res.TrimmedOut = append(res.TrimmedOut, res.Points[e.i])
	}
	var txs, tys []float64
	for i := range xs {
		if !dropped[i] {
			txs = append(txs, xs[i])
			tys = append(tys, ys[i])
		}
	}
	_, _, res.R2Trimmed = LinearRegression(txs, tys)
	return res
}

// LinearRegression fits y = a*x + b by least squares and returns
// (a, b, r²).
func LinearRegression(xs, ys []float64) (slope, intercept, r2 float64) {
	n := float64(len(xs))
	if n < 2 {
		return 0, 0, 0
	}
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, my, 0
	}
	slope = sxy / sxx
	intercept = my - slope*mx
	r := sxy / math.Sqrt(sxx*syy)
	return slope, intercept, r * r
}

// Format renders the scatter as text plus the fit summary.
func (f *Figure7Result) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-16s %-8s %14s %14s\n", "benchmark", "config", "block reduction", "cycle reduction")
	for _, p := range f.Points {
		fmt.Fprintf(&sb, "%-16s %-8s %14d %14d\n", p.Workload, p.Config, p.BlockReduction, p.CycleReduction)
	}
	fmt.Fprintf(&sb, "linear fit: cycles ~= %.2f*blocks + %.1f, r^2 = %.3f (paper: 0.78)\n",
		f.Slope, f.Intercept, f.R2)
	if len(f.TrimmedOut) > 0 {
		var names []string
		for _, p := range f.TrimmedOut {
			names = append(names, p.Workload+"/"+p.Config)
		}
		fmt.Fprintf(&sb, "trimmed fit (10%% largest residuals removed: %s): r^2 = %.3f\n",
			strings.Join(names, ", "), f.R2Trimmed)
	}
	return sb.String()
}
