package experiments

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/compiler"
	"repro/internal/engine"
	"repro/internal/workloads"
)

// Table1Row holds one benchmark's results across the phase orderings.
type Table1Row struct {
	Name     string
	BBCycles int64
	BBBlocks int64
	// PerConfig is keyed by ordering name, excluding BB.
	PerConfig map[string]Measurement
}

// Table1Result is the full table plus averages.
type Table1Result struct {
	Rows     []Table1Row
	Configs  []string
	Averages map[string]float64 // mean percent improvement per config
}

// Table1Configs are the non-baseline orderings in column order.
var Table1Configs = []compiler.Ordering{
	compiler.OrderUPIO, compiler.OrderIUPO, compiler.OrderIUPthenO, compiler.OrderIUPO1,
}

// Table1 reproduces the paper's Table 1: percent improvement in cycle
// counts of hyperblocks over basic blocks under four phase orderings,
// with m/t/u/p static formation statistics, using the greedy
// breadth-first policy throughout (as in the paper). It runs on a
// fresh default engine; use Table1Engine to share a configured one.
func Table1(ws []workloads.Workload) (*Table1Result, error) {
	return Table1Engine(engine.Default(), ws)
}

// Table1Engine runs Table 1's cells through eng. A failing cell drops
// its benchmark's row and joins the returned error; the remaining
// rows are still tabulated.
func Table1Engine(eng *engine.Engine, ws []workloads.Workload) (*Table1Result, error) {
	res := &Table1Result{Averages: map[string]float64{}}
	for _, ord := range Table1Configs {
		res.Configs = append(res.Configs, string(ord))
	}
	perRow := 1 + len(Table1Configs)
	jobs := make([]engine.Job, 0, len(ws)*perRow)
	for i := range ws {
		w := &ws[i]
		jobs = append(jobs, NewJob(w, compiler.Options{Ordering: compiler.OrderBB}, engine.SimTiming))
		for _, ord := range Table1Configs {
			jobs = append(jobs, NewJob(w, compiler.Options{Ordering: ord}, engine.SimTiming))
		}
	}
	results := eng.Run(jobs)

	sums := map[string]float64{}
	var errs []error
	for i := range ws {
		cells := results[i*perRow : (i+1)*perRow]
		if err := rowErr(cells); err != nil {
			errs = append(errs, err)
			continue
		}
		base := toMeasurement(cells[0])
		row := Table1Row{
			Name:      ws[i].Name,
			BBCycles:  base.Cycles,
			BBBlocks:  base.Blocks,
			PerConfig: map[string]Measurement{},
		}
		for k, ord := range Table1Configs {
			m := toMeasurement(cells[k+1])
			row.PerConfig[string(ord)] = m
			sums[string(ord)] += Improvement(base.Cycles, m.Cycles)
		}
		res.Rows = append(res.Rows, row)
	}
	if len(res.Rows) > 0 {
		for _, c := range res.Configs {
			res.Averages[c] = sums[c] / float64(len(res.Rows))
		}
	}
	return res, errors.Join(errs...)
}

// Format renders the table in the paper's layout.
func (t *Table1Result) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-16s %10s", "benchmark", "BB cycles")
	for _, c := range t.Configs {
		fmt.Fprintf(&sb, " | %-13s %6s", c+" m/t/u/p", "%")
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		fmt.Fprintf(&sb, "%-16s %10d", row.Name, row.BBCycles)
		for _, c := range t.Configs {
			m := row.PerConfig[c]
			fmt.Fprintf(&sb, " | %-13s %6.1f", FormatMTUP(m.Form),
				Improvement(row.BBCycles, m.Cycles))
		}
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "%-16s %10s", "Average", "")
	for _, c := range t.Configs {
		fmt.Fprintf(&sb, " | %-13s %6.1f", "", t.Averages[c])
	}
	sb.WriteByte('\n')
	return sb.String()
}
