package experiments

import (
	"fmt"
	"strings"

	"repro/internal/compiler"
	"repro/internal/workloads"
)

// Table1Row holds one benchmark's results across the phase orderings.
type Table1Row struct {
	Name     string
	BBCycles int64
	BBBlocks int64
	// PerConfig is keyed by ordering name, excluding BB.
	PerConfig map[string]Measurement
}

// Table1Result is the full table plus averages.
type Table1Result struct {
	Rows     []Table1Row
	Configs  []string
	Averages map[string]float64 // mean percent improvement per config
}

// Table1Configs are the non-baseline orderings in column order.
var Table1Configs = []compiler.Ordering{
	compiler.OrderUPIO, compiler.OrderIUPO, compiler.OrderIUPthenO, compiler.OrderIUPO1,
}

// Table1 reproduces the paper's Table 1: percent improvement in cycle
// counts of hyperblocks over basic blocks under four phase orderings,
// with m/t/u/p static formation statistics, using the greedy
// breadth-first policy throughout (as in the paper).
func Table1(ws []workloads.Workload) (*Table1Result, error) {
	res := &Table1Result{Averages: map[string]float64{}}
	for _, ord := range Table1Configs {
		res.Configs = append(res.Configs, string(ord))
	}
	sums := map[string]float64{}
	for i := range ws {
		w := &ws[i]
		base, err := runTiming(w, compiler.Options{Ordering: compiler.OrderBB})
		if err != nil {
			return nil, err
		}
		row := Table1Row{
			Name:      w.Name,
			BBCycles:  base.Cycles,
			BBBlocks:  base.Blocks,
			PerConfig: map[string]Measurement{},
		}
		for _, ord := range Table1Configs {
			m, err := runTiming(w, compiler.Options{Ordering: ord})
			if err != nil {
				return nil, err
			}
			row.PerConfig[string(ord)] = m
			sums[string(ord)] += Improvement(base.Cycles, m.Cycles)
		}
		res.Rows = append(res.Rows, row)
	}
	for _, c := range res.Configs {
		res.Averages[c] = sums[c] / float64(len(res.Rows))
	}
	return res, nil
}

// Format renders the table in the paper's layout.
func (t *Table1Result) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-16s %10s", "benchmark", "BB cycles")
	for _, c := range t.Configs {
		fmt.Fprintf(&sb, " | %-13s %6s", c+" m/t/u/p", "%")
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		fmt.Fprintf(&sb, "%-16s %10d", row.Name, row.BBCycles)
		for _, c := range t.Configs {
			m := row.PerConfig[c]
			fmt.Fprintf(&sb, " | %-13s %6.1f", FormatMTUP(m.Form),
				Improvement(row.BBCycles, m.Cycles))
		}
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "%-16s %10s", "Average", "")
	for _, c := range t.Configs {
		fmt.Fprintf(&sb, " | %-13s %6.1f", "", t.Averages[c])
	}
	sb.WriteByte('\n')
	return sb.String()
}
