package experiments

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/policy"
	"repro/internal/workloads"
)

// Table2Heuristic is one column of Table 2.
type Table2Heuristic struct {
	// Name as in the paper: VLIW, Convergent VLIW, DF, BF.
	Name string
	// Ordering and Policy define the configuration.
	Ordering compiler.Ordering
	Policy   func() core.Policy
}

// Table2Heuristics are the paper's four heuristic columns: the
// Mahlke-style VLIW path heuristic without and with iterative
// optimization, depth-first, and breadth-first.
func Table2Heuristics() []Table2Heuristic {
	return []Table2Heuristic{
		{Name: "VLIW", Ordering: compiler.OrderIUPthenO,
			Policy: func() core.Policy { return &policy.VLIW{} }},
		{Name: "ConvVLIW", Ordering: compiler.OrderIUPO1,
			Policy: func() core.Policy { return &policy.VLIW{} }},
		{Name: "DF", Ordering: compiler.OrderIUPO1,
			Policy: func() core.Policy { return policy.DepthFirst{} }},
		{Name: "BF", Ordering: compiler.OrderIUPO1,
			Policy: func() core.Policy { return policy.BreadthFirst{} }},
	}
}

// Table2Row is one benchmark's heuristic comparison.
type Table2Row struct {
	Name     string
	BBCycles int64
	// PerHeuristic maps heuristic name to its measurement.
	PerHeuristic map[string]Measurement
}

// Table2Result is the full table plus averages.
type Table2Result struct {
	Rows       []Table2Row
	Heuristics []string
	Averages   map[string]float64
}

// Table2 reproduces the paper's Table 2: percent improvement in cycle
// count over basic blocks for the VLIW heuristic (without and with
// iterative optimization) and the depth-first and breadth-first EDGE
// heuristics. It runs on a fresh default engine; use Table2Engine to
// share a configured one.
func Table2(ws []workloads.Workload) (*Table2Result, error) {
	return Table2Engine(engine.Default(), ws)
}

// Table2Engine runs Table 2's cells through eng. A failing cell drops
// its benchmark's row and joins the returned error.
func Table2Engine(eng *engine.Engine, ws []workloads.Workload) (*Table2Result, error) {
	hs := Table2Heuristics()
	res := &Table2Result{Averages: map[string]float64{}}
	for _, h := range hs {
		res.Heuristics = append(res.Heuristics, h.Name)
	}
	perRow := 1 + len(hs)
	jobs := make([]engine.Job, 0, len(ws)*perRow)
	for i := range ws {
		w := &ws[i]
		jobs = append(jobs, NewJob(w, compiler.Options{Ordering: compiler.OrderBB}, engine.SimTiming))
		for _, h := range hs {
			j := NewJob(w, compiler.Options{Ordering: h.Ordering, Policy: h.Policy()}, engine.SimTiming)
			j.Config = h.Name
			jobs = append(jobs, j)
		}
	}
	results := eng.Run(jobs)

	sums := map[string]float64{}
	var errs []error
	for i := range ws {
		cells := results[i*perRow : (i+1)*perRow]
		if err := rowErr(cells); err != nil {
			errs = append(errs, err)
			continue
		}
		base := toMeasurement(cells[0])
		row := Table2Row{Name: ws[i].Name, BBCycles: base.Cycles,
			PerHeuristic: map[string]Measurement{}}
		for k, h := range hs {
			m := toMeasurement(cells[k+1])
			row.PerHeuristic[h.Name] = m
			sums[h.Name] += Improvement(base.Cycles, m.Cycles)
		}
		res.Rows = append(res.Rows, row)
	}
	if len(res.Rows) > 0 {
		for _, h := range res.Heuristics {
			res.Averages[h] = sums[h] / float64(len(res.Rows))
		}
	}
	return res, errors.Join(errs...)
}

// Format renders the table in the paper's layout.
func (t *Table2Result) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-16s %10s", "benchmark", "BB cycles")
	for _, h := range t.Heuristics {
		fmt.Fprintf(&sb, " %9s", h)
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		fmt.Fprintf(&sb, "%-16s %10d", row.Name, row.BBCycles)
		for _, h := range t.Heuristics {
			fmt.Fprintf(&sb, " %9.1f", Improvement(row.BBCycles, row.PerHeuristic[h].Cycles))
		}
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "%-16s %10s", "Average", "")
	for _, h := range t.Heuristics {
		fmt.Fprintf(&sb, " %9.1f", t.Averages[h])
	}
	sb.WriteByte('\n')
	return sb.String()
}
