// Package experiments regenerates the paper's evaluation: Table 1
// (phase orderings, cycle counts), Table 2 (VLIW vs EDGE block
// selection heuristics), Table 3 (SPEC block counts), and Figure 7
// (cycle-count reduction vs block-count reduction with a linear fit).
//
// Every table cell is an independent (workload, configuration)
// compile+simulate job; the tables build a flat job list and submit
// it to internal/engine, which runs the cells concurrently with
// caching and returns them in submission order, so table output is
// identical to a serial run. Per-cell failures are aggregated: a
// failing cell drops its benchmark's row and joins the returned
// error, instead of aborting the whole table.
//
// Absolute numbers come from this repository's simulators, not the
// authors' RTL-validated TRIPS simulator, so only the relative shapes
// are comparable with the paper (see EXPERIMENTS.md).
package experiments

import (
	"errors"
	"fmt"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/workloads"
)

// Measurement is one (workload, configuration) data point.
type Measurement struct {
	Workload string
	Config   string
	// Cycles is the timing simulator's cycle count (0 when only the
	// functional simulator ran).
	Cycles int64
	// Blocks is the dynamic block count from the same run.
	Blocks int64
	// Form are the static formation statistics (m/t/u/p).
	Form core.Stats
	// Mispredicts and ExitLookups describe branch behaviour.
	Mispredicts int64
	ExitLookups int64
}

// Improvement returns the percent improvement of m over the baseline
// metric value (positive = better/smaller).
func Improvement(base, v int64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * float64(base-v) / float64(base)
}

// NewJob is the tables' shared job constructor: compile w under opts
// (profiling main on the training arguments, as every configuration
// in the paper does) and measure it on the simulator sim selects —
// the cycle-level model for Tables 1 and 2, the fast functional one
// for Table 3.
func NewJob(w *workloads.Workload, opts compiler.Options, sim engine.SimKind) engine.Job {
	opts.ProfileFn = "main"
	opts.ProfileArgs = w.TrainArgs
	return engine.Job{
		Workload: w.Name,
		Config:   string(opts.Ordering),
		Source:   w.Source,
		Opts:     opts,
		Sim:      sim,
		Args:     w.Args,
	}
}

// toMeasurement projects an engine result onto the tables' data
// point.
func toMeasurement(r engine.Result) Measurement {
	m := r.Metrics
	return Measurement{
		Workload:    m.Workload,
		Config:      m.Config,
		Cycles:      m.Cycles,
		Blocks:      m.Blocks,
		Form:        m.Form,
		Mispredicts: m.Mispredicts,
		ExitLookups: m.ExitLookups,
	}
}

// rowErr joins the failures among one benchmark's cells.
func rowErr(cells []engine.Result) error {
	var errs []error
	for _, c := range cells {
		if c.Err != nil {
			errs = append(errs, c.Err)
		}
	}
	return errors.Join(errs...)
}

// FormatMTUP renders the paper's m/t/u/p static statistics column.
func FormatMTUP(s core.Stats) string {
	return fmt.Sprintf("%d/%d/%d/%d", s.Merges, s.TailDups, s.Unrolls, s.Peels)
}
