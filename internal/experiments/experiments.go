// Package experiments regenerates the paper's evaluation: Table 1
// (phase orderings, cycle counts), Table 2 (VLIW vs EDGE block
// selection heuristics), Table 3 (SPEC block counts), and Figure 7
// (cycle-count reduction vs block-count reduction with a linear fit).
//
// Absolute numbers come from this repository's simulators, not the
// authors' RTL-validated TRIPS simulator, so only the relative shapes
// are comparable with the paper (see EXPERIMENTS.md).
package experiments

import (
	"fmt"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/sim/functional"
	"repro/internal/sim/timing"
	"repro/internal/workloads"
)

// Measurement is one (workload, configuration) data point.
type Measurement struct {
	Workload string
	Config   string
	// Cycles is the timing simulator's cycle count (0 when only the
	// functional simulator ran).
	Cycles int64
	// Blocks is the dynamic block count from the same run.
	Blocks int64
	// Form are the static formation statistics (m/t/u/p).
	Form core.Stats
	// Mispredicts and ExitLookups describe branch behaviour.
	Mispredicts int64
	ExitLookups int64
}

// Improvement returns the percent improvement of m over the baseline
// metric value (positive = better/smaller).
func Improvement(base, v int64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * float64(base-v) / float64(base)
}

// runTiming compiles w under the given options and measures it on the
// cycle-level simulator.
func runTiming(w *workloads.Workload, opts compiler.Options) (Measurement, error) {
	opts.ProfileFn = "main"
	opts.ProfileArgs = w.TrainArgs
	res, err := compiler.Compile(w.Source, opts)
	if err != nil {
		return Measurement{}, fmt.Errorf("%s/%s: %w", w.Name, opts.Ordering, err)
	}
	m := timing.New(res.Prog, timing.DefaultConfig())
	if _, err := m.Run("main", w.Args...); err != nil {
		return Measurement{}, fmt.Errorf("%s/%s: %w", w.Name, opts.Ordering, err)
	}
	return Measurement{
		Workload:    w.Name,
		Config:      string(opts.Ordering),
		Cycles:      m.Stats.Cycles,
		Blocks:      m.Stats.Blocks,
		Form:        res.FormStats,
		Mispredicts: m.Stats.Mispredicts,
		ExitLookups: m.Stats.ExitLookups,
	}, nil
}

// runFunctional compiles w under the given options and measures
// dynamic block counts on the functional simulator.
func runFunctional(w *workloads.Workload, opts compiler.Options) (Measurement, error) {
	opts.ProfileFn = "main"
	opts.ProfileArgs = w.TrainArgs
	res, err := compiler.Compile(w.Source, opts)
	if err != nil {
		return Measurement{}, fmt.Errorf("%s/%s: %w", w.Name, opts.Ordering, err)
	}
	m := functional.New(res.Prog)
	if _, err := m.Run("main", w.Args...); err != nil {
		return Measurement{}, fmt.Errorf("%s/%s: %w", w.Name, opts.Ordering, err)
	}
	return Measurement{
		Workload: w.Name,
		Config:   string(opts.Ordering),
		Blocks:   m.Stats.Blocks,
		Form:     res.FormStats,
	}, nil
}

// FormatMTUP renders the paper's m/t/u/p static statistics column.
func FormatMTUP(s core.Stats) string {
	return fmt.Sprintf("%d/%d/%d/%d", s.Merges, s.TailDups, s.Unrolls, s.Peels)
}
