package experiments

import (
	"fmt"
	"strings"

	"repro/internal/compiler"
	"repro/internal/workloads"
)

// Table3Row is one SPEC proxy's block-count comparison.
type Table3Row struct {
	Name string
	// BBBlocks is the baseline dynamic block count (the paper
	// reports it in millions; ours are smaller programs).
	BBBlocks int64
	// PerConfig maps ordering to measurement.
	PerConfig map[string]Measurement
}

// Table3Result is the full table plus averages.
type Table3Result struct {
	Rows     []Table3Row
	Configs  []string
	Averages map[string]float64
}

// Table3 reproduces the paper's Table 3: percent improvement in
// dynamic block counts of the SPEC proxies over basic blocks under
// the four phase orderings, measured with the fast functional
// simulator (the cycle simulator being too slow for whole programs —
// same rationale as the paper's §7.3).
func Table3(ws []workloads.Workload) (*Table3Result, error) {
	res := &Table3Result{Averages: map[string]float64{}}
	for _, ord := range Table1Configs {
		res.Configs = append(res.Configs, string(ord))
	}
	sums := map[string]float64{}
	for i := range ws {
		w := &ws[i]
		base, err := runFunctional(w, compiler.Options{Ordering: compiler.OrderBB})
		if err != nil {
			return nil, err
		}
		row := Table3Row{Name: w.Name, BBBlocks: base.Blocks,
			PerConfig: map[string]Measurement{}}
		for _, ord := range Table1Configs {
			m, err := runFunctional(w, compiler.Options{Ordering: ord})
			if err != nil {
				return nil, err
			}
			row.PerConfig[string(ord)] = m
			sums[string(ord)] += Improvement(base.Blocks, m.Blocks)
		}
		res.Rows = append(res.Rows, row)
	}
	for _, c := range res.Configs {
		res.Averages[c] = sums[c] / float64(len(res.Rows))
	}
	return res, nil
}

// Format renders the table in the paper's layout ("Phased" UPIO/IUPO
// then "Convergent" (IUP)O/(IUPO)).
func (t *Table3Result) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s %12s", "benchmark", "BB blocks")
	for _, c := range t.Configs {
		fmt.Fprintf(&sb, " %9s", c)
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		fmt.Fprintf(&sb, "%-10s %12d", row.Name, row.BBBlocks)
		for _, c := range t.Configs {
			fmt.Fprintf(&sb, " %9.1f", Improvement(row.BBBlocks, row.PerConfig[c].Blocks))
		}
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "%-10s %12s", "Average", "")
	for _, c := range t.Configs {
		fmt.Fprintf(&sb, " %9.1f", t.Averages[c])
	}
	sb.WriteByte('\n')
	return sb.String()
}
