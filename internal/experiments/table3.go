package experiments

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/compiler"
	"repro/internal/engine"
	"repro/internal/workloads"
)

// Table3Row is one SPEC proxy's block-count comparison.
type Table3Row struct {
	Name string
	// BBBlocks is the baseline dynamic block count (the paper
	// reports it in millions; ours are smaller programs).
	BBBlocks int64
	// PerConfig maps ordering to measurement.
	PerConfig map[string]Measurement
}

// Table3Result is the full table plus averages.
type Table3Result struct {
	Rows     []Table3Row
	Configs  []string
	Averages map[string]float64
}

// Table3 reproduces the paper's Table 3: percent improvement in
// dynamic block counts of the SPEC proxies over basic blocks under
// the four phase orderings, measured with the fast functional
// simulator (the cycle simulator being too slow for whole programs —
// same rationale as the paper's §7.3).
func Table3(ws []workloads.Workload) (*Table3Result, error) {
	return Table3Engine(engine.Default(), ws)
}

// Table3Engine runs Table 3's cells through eng on the functional
// simulator. A failing cell drops its benchmark's row and joins the
// returned error.
func Table3Engine(eng *engine.Engine, ws []workloads.Workload) (*Table3Result, error) {
	res := &Table3Result{Averages: map[string]float64{}}
	for _, ord := range Table1Configs {
		res.Configs = append(res.Configs, string(ord))
	}
	perRow := 1 + len(Table1Configs)
	jobs := make([]engine.Job, 0, len(ws)*perRow)
	for i := range ws {
		w := &ws[i]
		jobs = append(jobs, NewJob(w, compiler.Options{Ordering: compiler.OrderBB}, engine.SimFunctional))
		for _, ord := range Table1Configs {
			jobs = append(jobs, NewJob(w, compiler.Options{Ordering: ord}, engine.SimFunctional))
		}
	}
	results := eng.Run(jobs)

	sums := map[string]float64{}
	var errs []error
	for i := range ws {
		cells := results[i*perRow : (i+1)*perRow]
		if err := rowErr(cells); err != nil {
			errs = append(errs, err)
			continue
		}
		base := toMeasurement(cells[0])
		row := Table3Row{Name: ws[i].Name, BBBlocks: base.Blocks,
			PerConfig: map[string]Measurement{}}
		for k, ord := range Table1Configs {
			m := toMeasurement(cells[k+1])
			row.PerConfig[string(ord)] = m
			sums[string(ord)] += Improvement(base.Blocks, m.Blocks)
		}
		res.Rows = append(res.Rows, row)
	}
	if len(res.Rows) > 0 {
		for _, c := range res.Configs {
			res.Averages[c] = sums[c] / float64(len(res.Rows))
		}
	}
	return res, errors.Join(errs...)
}

// Format renders the table in the paper's layout ("Phased" UPIO/IUPO
// then "Convergent" (IUP)O/(IUPO)).
func (t *Table3Result) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s %12s", "benchmark", "BB blocks")
	for _, c := range t.Configs {
		fmt.Fprintf(&sb, " %9s", c)
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		fmt.Fprintf(&sb, "%-10s %12d", row.Name, row.BBBlocks)
		for _, c := range t.Configs {
			fmt.Fprintf(&sb, " %9.1f", Improvement(row.BBBlocks, row.PerConfig[c].Blocks))
		}
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "%-10s %12s", "Average", "")
	for _, c := range t.Configs {
		fmt.Fprintf(&sb, " %9.1f", t.Averages[c])
	}
	sb.WriteByte('\n')
	return sb.String()
}
