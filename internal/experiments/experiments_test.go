package experiments

import (
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/chaos"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/workloads"
)

func pick(t *testing.T, set []workloads.Workload, names ...string) []workloads.Workload {
	t.Helper()
	var out []workloads.Workload
	for _, n := range names {
		w, err := workloads.ByName(set, n)
		if err != nil {
			t.Fatal(err)
		}
		// Shrink run sizes for test speed.
		c := *w
		c.Args = c.TrainArgs
		out = append(out, c)
	}
	return out
}

func TestTable1SmallSubset(t *testing.T) {
	ws := pick(t, workloads.Micro(), "vadd", "sieve")
	t1, err := Table1(ws)
	if err != nil {
		t.Fatal(err)
	}
	if len(t1.Rows) != 2 || len(t1.Configs) != 4 {
		t.Fatalf("shape wrong: %d rows, %d configs", len(t1.Rows), len(t1.Configs))
	}
	for _, row := range t1.Rows {
		if row.BBCycles <= 0 || row.BBBlocks <= 0 {
			t.Fatalf("%s: bad baseline", row.Name)
		}
		for _, c := range t1.Configs {
			m := row.PerConfig[c]
			if m.Cycles <= 0 {
				t.Fatalf("%s/%s: no cycles", row.Name, c)
			}
			if m.Blocks > row.BBBlocks {
				t.Errorf("%s/%s: formation increased blocks %d -> %d",
					row.Name, c, row.BBBlocks, m.Blocks)
			}
		}
	}
	s := t1.Format()
	for _, want := range []string{"vadd", "sieve", "Average", "(IUPO)"} {
		if !strings.Contains(s, want) {
			t.Errorf("Format missing %q", want)
		}
	}
}

func TestTable2SmallSubset(t *testing.T) {
	ws := pick(t, workloads.Micro(), "vadd")
	t2, err := Table2(ws)
	if err != nil {
		t.Fatal(err)
	}
	if len(t2.Heuristics) != 4 {
		t.Fatalf("want 4 heuristics, got %v", t2.Heuristics)
	}
	for _, h := range t2.Heuristics {
		if t2.Rows[0].PerHeuristic[h].Cycles <= 0 {
			t.Fatalf("%s: no measurement", h)
		}
	}
	if !strings.Contains(t2.Format(), "BF") {
		t.Error("Format missing BF column")
	}
}

func TestTable3SmallSubset(t *testing.T) {
	ws := pick(t, workloads.Spec(), "gap", "mesa")
	t3, err := Table3(ws)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range t3.Rows {
		for _, c := range t3.Configs {
			if row.PerConfig[c].Blocks <= 0 {
				t.Fatalf("%s/%s: no blocks", row.Name, c)
			}
			if imp := Improvement(row.BBBlocks, row.PerConfig[c].Blocks); imp < 0 {
				t.Errorf("%s/%s: negative block improvement %.1f", row.Name, c, imp)
			}
		}
	}
}

func TestFigure7FromTable1(t *testing.T) {
	ws := pick(t, workloads.Micro(), "vadd", "sieve", "matrix_1")
	t1, err := Table1(ws)
	if err != nil {
		t.Fatal(err)
	}
	f7 := Figure7(t1)
	if len(f7.Points) != 3*4 {
		t.Fatalf("want 12 points, got %d", len(f7.Points))
	}
	if f7.R2 < 0 || f7.R2 > 1 {
		t.Fatalf("r² out of range: %f", f7.R2)
	}
	if !strings.Contains(f7.Format(), "linear fit") {
		t.Error("Format missing fit line")
	}
}

// TestTableParallelDeterminism checks the engine contract the tables
// rely on: a parallel run yields Measurements identical to a serial
// run, cell for cell.
func TestTableParallelDeterminism(t *testing.T) {
	ws := pick(t, workloads.Micro(), "vadd", "sieve")
	serial, err := Table1Engine(engine.New(engine.Config{Workers: 1}), ws)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Table1Engine(engine.New(engine.Config{Workers: 8}), ws)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("-j 8 table differs from -j 1 table:\n%s\nvs\n%s",
			parallel.Format(), serial.Format())
	}

	spec := pick(t, workloads.Spec(), "gap")
	s3, err := Table3Engine(engine.New(engine.Config{Workers: 1}), spec)
	if err != nil {
		t.Fatal(err)
	}
	p3, err := Table3Engine(engine.New(engine.Config{Workers: 8}), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s3, p3) {
		t.Fatal("-j 8 Table 3 differs from -j 1")
	}
}

// TestTableSharedEngineCache checks that re-running a table on the
// same engine is served from the cache and produces the same result.
func TestTableSharedEngineCache(t *testing.T) {
	ws := pick(t, workloads.Micro(), "vadd")
	eng := engine.Default()
	first, err := Table1Engine(eng, ws)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Table1Engine(eng, ws)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("cached rerun changed the table")
	}
	if st := eng.Cache().Stats(); st.Hits == 0 {
		t.Fatalf("rerun did not hit the cache: %+v", st)
	}
}

// TestTableCellsChaosClean runs a slice of table jobs under a chaos
// plan and checks that the cells are chaos-clean: injected faults move
// cycle counts but never the architectural results the tables derive
// from.
func TestTableCellsChaosClean(t *testing.T) {
	ws := pick(t, workloads.Micro(), "vadd", "sieve")
	var jobs []engine.Job
	for i := range ws {
		jobs = append(jobs,
			NewJob(&ws[i], compiler.Options{Ordering: compiler.OrderIUPO1}, engine.SimTiming))
	}
	clean := engine.New(engine.Config{}).Run(jobs)
	plan := chaos.DefaultPlan(1)
	faulty := engine.New(engine.Config{Chaos: &plan}).Run(jobs)

	var faults int64
	for i := range jobs {
		c, f := clean[i], faulty[i]
		if c.Err != nil || f.Err != nil {
			t.Fatalf("%s: clean err %v, chaos err %v", jobs[i].Workload, c.Err, f.Err)
		}
		if f.Metrics.Result != c.Metrics.Result ||
			!reflect.DeepEqual(f.Metrics.Output, c.Metrics.Output) {
			t.Errorf("%s: chaos changed architectural state", jobs[i].Workload)
		}
		if f.Metrics.Cycles < c.Metrics.Cycles {
			t.Errorf("%s: faults shortened the run: %d < %d cycles",
				jobs[i].Workload, f.Metrics.Cycles, c.Metrics.Cycles)
		}
		faults += f.Metrics.FaultsInjected
	}
	if faults == 0 {
		t.Error("chaos plan injected nothing across the table cells")
	}
}

func TestImprovement(t *testing.T) {
	if Improvement(100, 80) != 20 {
		t.Fatal("20% improvement expected")
	}
	if Improvement(100, 120) != -20 {
		t.Fatal("-20% expected")
	}
	if Improvement(0, 50) != 0 {
		t.Fatal("zero baseline guarded")
	}
}

func TestLinearRegressionExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{3, 5, 7, 9} // y = 2x + 1
	slope, intercept, r2 := LinearRegression(xs, ys)
	if math.Abs(slope-2) > 1e-9 || math.Abs(intercept-1) > 1e-9 || math.Abs(r2-1) > 1e-9 {
		t.Fatalf("fit = %f, %f, %f", slope, intercept, r2)
	}
}

// Property: a perfect linear relation always yields r² == 1 (within
// epsilon) regardless of slope/intercept, and r² is always in [0,1].
func TestQuickRegressionProperties(t *testing.T) {
	f := func(pts []int16, a, b int8) bool {
		if len(pts) < 3 || a == 0 {
			return true
		}
		seen := map[int16]bool{}
		var xs, ys []float64
		for _, p := range pts {
			if seen[p] {
				continue
			}
			seen[p] = true
			xs = append(xs, float64(p))
			ys = append(ys, float64(a)*float64(p)+float64(b))
		}
		if len(xs) < 3 {
			return true
		}
		slope, intercept, r2 := LinearRegression(xs, ys)
		if math.Abs(slope-float64(a)) > 1e-6 || math.Abs(intercept-float64(b)) > 1e-6 {
			return false
		}
		return math.Abs(r2-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFormatMTUP(t *testing.T) {
	s := FormatMTUP(core.Stats{Merges: 3, TailDups: 2, Unrolls: 1, Peels: 0})
	if s != "3/2/1/0" {
		t.Fatalf("FormatMTUP = %q", s)
	}
}
