// Package buildinfo reports what a binary was built from — Go
// version, VCS revision, and the engine's cache key schema — so a
// mixed-version cluster is detectable at a glance: every binary grows
// a -version flag and every serving node reports the same Info on
// /statusz. Two nodes whose KeySchema differ will refuse to exchange
// artifacts (the store protocol negotiates the schema per request);
// this package is how an operator sees that before wondering where
// the cluster-wide hit rate went.
package buildinfo

import (
	"fmt"
	"io"
	"runtime"
	"runtime/debug"

	"repro/internal/engine"
)

// Info is the build identity document.
type Info struct {
	// Binary is the reporting command's name ("hbserved", "hbfront", …).
	Binary string `json:"binary,omitempty"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
	// Revision is the VCS commit (short), with "+dirty" when the
	// working tree was modified; "unknown" outside a VCS stamp.
	Revision string `json:"revision"`
	// KeySchema is the engine's cache-key schema version: nodes with
	// different schemas never exchange artifacts.
	KeySchema int `json:"key_schema"`
}

// Collect assembles the Info for the running binary.
func Collect(binary string) Info {
	info := Info{
		Binary:    binary,
		GoVersion: runtime.Version(),
		Revision:  "unknown",
		KeySchema: engine.KeySchema,
	}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	var rev string
	var dirty bool
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		if dirty {
			rev += "+dirty"
		}
		info.Revision = rev
	}
	return info
}

// String renders the one-line -version output.
func (i Info) String() string {
	return fmt.Sprintf("%s %s (rev %s, key-schema %d)",
		i.Binary, i.GoVersion, i.Revision, i.KeySchema)
}

// Print writes the -version line for the named binary.
func Print(w io.Writer, binary string) {
	fmt.Fprintln(w, Collect(binary).String())
}
