package timing

import (
	"testing"

	"repro/internal/ir"
)

func twoExitBlock() (*ir.Function, *ir.Block, *ir.Block, *ir.Block) {
	f := ir.NewFunction("f", 1)
	b := f.NewBlock("entry")
	t1 := f.NewBlock("t")
	t2 := f.NewBlock("u")
	bd := ir.NewBuilder(f, b)
	bd.CondBr(f.Params[0], t1, t2)
	ir.NewBuilder(f, t1).Ret(ir.NoReg)
	ir.NewBuilder(f, t2).Ret(ir.NoReg)
	return f, b, t1, t2
}

func TestSingleExitOutcome(t *testing.T) {
	f := ir.NewFunction("f", 0)
	b := f.NewBlock("entry")
	e := f.NewBlock("exit")
	ir.NewBuilder(f, b).Br(e)
	ir.NewBuilder(f, e).Ret(ir.NoReg)
	if o, single := singleExitOutcome(b); !single || o != e.ID {
		t.Fatalf("single-branch block: %d, %v", o, single)
	}
	if o, single := singleExitOutcome(e); !single || o != retOutcome {
		t.Fatalf("ret-only block: %d, %v", o, single)
	}
	_, twob, _, _ := func() (*ir.Function, *ir.Block, *ir.Block, *ir.Block) { return twoExitBlock() }()
	if _, single := singleExitOutcome(twob); single {
		t.Fatal("two-target block is not single-exit")
	}
}

func TestPredictorLearnsStablePattern(t *testing.T) {
	_, b, t1, _ := twoExitBlock()
	p := newPredictor(6)
	// Always the same outcome: each distinct history pattern trains
	// separately, so warmup costs up to historyLen+1 cold misses and
	// then the predictor is perfect.
	misses := 0
	for i := 0; i < 50; i++ {
		if !p.observe("f", b, t1.ID) {
			misses++
		}
	}
	if misses > 7 {
		t.Fatalf("stable pattern misses = %d, want <= 7 (history warmup)", misses)
	}
	// Steady state: no further misses.
	before := p.Mispredicts
	for i := 0; i < 50; i++ {
		p.observe("f", b, t1.ID)
	}
	if p.Mispredicts != before {
		t.Fatalf("steady-state mispredicts: %d new", p.Mispredicts-before)
	}
}

func TestPredictorLearnsAlternation(t *testing.T) {
	_, b, t1, t2 := twoExitBlock()
	p := newPredictor(6)
	misses := 0
	for i := 0; i < 200; i++ {
		out := t1.ID
		if i%2 == 1 {
			out = t2.ID
		}
		if !p.observe("f", b, out) {
			misses++
		}
	}
	// History indexing should capture the alternation after warmup.
	if misses > 20 {
		t.Fatalf("alternating pattern misses = %d, too many", misses)
	}
}

func TestPredictorCountsLookups(t *testing.T) {
	_, b, t1, _ := twoExitBlock()
	p := newPredictor(0) // default history length kicks in
	for i := 0; i < 10; i++ {
		p.observe("f", b, t1.ID)
	}
	if p.Lookups != 10 {
		t.Fatalf("Lookups = %d", p.Lookups)
	}
	if p.Mispredicts == 0 || p.Mispredicts > 8 {
		t.Fatalf("Mispredicts = %d", p.Mispredicts)
	}
}

func TestPredictorSingleExitBypass(t *testing.T) {
	f := ir.NewFunction("f", 0)
	b := f.NewBlock("entry")
	e := f.NewBlock("exit")
	ir.NewBuilder(f, b).Br(e)
	ir.NewBuilder(f, e).Ret(ir.NoReg)
	p := newPredictor(6)
	for i := 0; i < 5; i++ {
		if !p.observe("f", b, e.ID) {
			t.Fatal("single-exit block must always predict")
		}
	}
	if p.Lookups != 0 {
		t.Fatalf("single-exit blocks must not consume table lookups: %d", p.Lookups)
	}
}
