package timing

import (
	"errors"
	"testing"

	"repro/internal/ir"
	"repro/internal/sim/functional"
)

func twoExitBlock() (*ir.Function, *ir.Block, *ir.Block, *ir.Block) {
	f := ir.NewFunction("f", 1)
	b := f.NewBlock("entry")
	t1 := f.NewBlock("t")
	t2 := f.NewBlock("u")
	bd := ir.NewBuilder(f, b)
	bd.CondBr(f.Params[0], t1, t2)
	ir.NewBuilder(f, t1).Ret(ir.NoReg)
	ir.NewBuilder(f, t2).Ret(ir.NoReg)
	return f, b, t1, t2
}

func TestSingleExitOutcome(t *testing.T) {
	f := ir.NewFunction("f", 0)
	b := f.NewBlock("entry")
	e := f.NewBlock("exit")
	ir.NewBuilder(f, b).Br(e)
	ir.NewBuilder(f, e).Ret(ir.NoReg)
	if o, single := singleExitOutcome(b); !single || o != e.ID {
		t.Fatalf("single-branch block: %d, %v", o, single)
	}
	if o, single := singleExitOutcome(e); !single || o != retOutcome {
		t.Fatalf("ret-only block: %d, %v", o, single)
	}
	_, twob, _, _ := func() (*ir.Function, *ir.Block, *ir.Block, *ir.Block) { return twoExitBlock() }()
	if _, single := singleExitOutcome(twob); single {
		t.Fatal("two-target block is not single-exit")
	}
}

func TestPredictorLearnsStablePattern(t *testing.T) {
	_, b, t1, _ := twoExitBlock()
	p := newPredictor(6)
	// Always the same outcome: each distinct history pattern trains
	// separately, so warmup costs up to historyLen+1 cold misses and
	// then the predictor is perfect.
	misses := 0
	for i := 0; i < 50; i++ {
		if !p.observe("f", b, t1.ID) {
			misses++
		}
	}
	if misses > 7 {
		t.Fatalf("stable pattern misses = %d, want <= 7 (history warmup)", misses)
	}
	// Steady state: no further misses.
	before := p.Mispredicts
	for i := 0; i < 50; i++ {
		p.observe("f", b, t1.ID)
	}
	if p.Mispredicts != before {
		t.Fatalf("steady-state mispredicts: %d new", p.Mispredicts-before)
	}
}

func TestPredictorLearnsAlternation(t *testing.T) {
	_, b, t1, t2 := twoExitBlock()
	p := newPredictor(6)
	misses := 0
	for i := 0; i < 200; i++ {
		out := t1.ID
		if i%2 == 1 {
			out = t2.ID
		}
		if !p.observe("f", b, out) {
			misses++
		}
	}
	// History indexing should capture the alternation after warmup.
	if misses > 20 {
		t.Fatalf("alternating pattern misses = %d, too many", misses)
	}
}

func TestPredictorCountsLookups(t *testing.T) {
	_, b, t1, _ := twoExitBlock()
	p := newPredictor(0) // default history length kicks in
	for i := 0; i < 10; i++ {
		p.observe("f", b, t1.ID)
	}
	if p.Lookups != 10 {
		t.Fatalf("Lookups = %d", p.Lookups)
	}
	if p.Mispredicts == 0 || p.Mispredicts > 8 {
		t.Fatalf("Mispredicts = %d", p.Mispredicts)
	}
}

// mispredictEvery forces a flush on every predicted exit and injects
// nothing else.
type mispredictEvery struct{}

func (mispredictEvery) FetchStall(Site) int64     { return 0 }
func (mispredictEvery) HopJitter(Site, int) int64 { return 0 }
func (mispredictEvery) CommitDelay(Site) int64    { return 0 }
func (mispredictEvery) ForceMispredict(Site) bool { return true }

// chaoticSrc branches on an LCG bit, which the predictor cannot fully
// learn, so flushes occur naturally with deep speculation.
const chaoticSrc = `
func main(n) {
  var s = 0;
  var x = 98765;
  for (var i = 0; i < n; i = i + 1) {
    x = (x * 48271) % 2147483647;
    if ((x >> 7) & 1) { s = s + x % 13; } else { s = s - i; }
  }
  return s;
}`

// TestPredictorEdgeCases is the issue's edge-case table: flushes with
// a full 8-deep speculation window, back-to-back forced mispredicts,
// and predictor statistics after a watchdog abort.
func TestPredictorEdgeCases(t *testing.T) {
	want := func(t *testing.T, prog *ir.Program, n int64) int64 {
		t.Helper()
		v, _, _, err := functional.RunProgram(ir.CloneProgram(prog), "main", n)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	cases := []struct {
		name  string
		src   string
		n     int64
		tune  func(cfg *Config, m *Machine)
		check func(t *testing.T, m *Machine, v int64, err error, ref int64)
	}{
		{
			name: "flush with 8 blocks in flight",
			src:  chaoticSrc, n: 400,
			tune: func(cfg *Config, m *Machine) { cfg.MaxInflight = 8 },
			check: func(t *testing.T, m *Machine, v int64, err error, ref int64) {
				if err != nil {
					t.Fatal(err)
				}
				if v != ref {
					t.Errorf("result %d != functional %d", v, ref)
				}
				if m.Stats.Flushes == 0 {
					t.Error("chaotic branch flushed nothing")
				}
				if m.Stats.Mispredicts > m.Stats.ExitLookups {
					t.Errorf("mispredicts %d exceed lookups %d", m.Stats.Mispredicts, m.Stats.ExitLookups)
				}
			},
		},
		{
			name: "back-to-back forced mispredicts",
			src:  loopSrc, n: 100,
			tune: func(cfg *Config, m *Machine) { m.Inject = mispredictEvery{} },
			check: func(t *testing.T, m *Machine, v int64, err error, ref int64) {
				if err != nil {
					t.Fatal(err)
				}
				if v != ref {
					t.Errorf("result %d != functional %d", v, ref)
				}
				// Every predicted (non-return) exit flushed: forced
				// flushes count on top of the predictor's own misses.
				if m.Stats.Flushes < m.Stats.Blocks-1 {
					t.Errorf("flushes %d < predicted exits ~%d", m.Stats.Flushes, m.Stats.Blocks-1)
				}
				if m.Stats.Faults.ForcedMispredicts == 0 {
					t.Error("forced mispredicts not counted")
				}
				// The predictor's own tables trained normally: its miss
				// count stays bounded by its lookups.
				if m.Stats.Mispredicts > m.Stats.ExitLookups {
					t.Errorf("mispredicts %d exceed lookups %d", m.Stats.Mispredicts, m.Stats.ExitLookups)
				}
			},
		},
		{
			name: "predictor state after watchdog abort",
			src:  chaoticSrc, n: 400,
			tune: func(cfg *Config, m *Machine) {
				m.Inject = commitDelayAt{seq: 9, delay: DefaultWatchdogGap + 1}
			},
			check: func(t *testing.T, m *Machine, v int64, err error, ref int64) {
				if !errors.Is(err, ErrWatchdog) {
					t.Fatalf("err = %v, want watchdog", err)
				}
				// The abort must leave coherent partial statistics: the
				// predictor observed one exit per executed block at most,
				// and misses never exceed lookups.
				if m.Stats.ExitLookups > m.Stats.Blocks {
					t.Errorf("lookups %d exceed blocks %d", m.Stats.ExitLookups, m.Stats.Blocks)
				}
				if m.Stats.Mispredicts > m.Stats.ExitLookups {
					t.Errorf("mispredicts %d exceed lookups %d", m.Stats.Mispredicts, m.Stats.ExitLookups)
				}
				// A fresh machine over the same program is unaffected by
				// the aborted one's predictor state.
				m2 := New(ir.CloneProgram(m.Prog), DefaultConfig())
				if v2, err2 := m2.Run("main", 400); err2 != nil || v2 != ref {
					t.Errorf("fresh run after abort: v=%d err=%v want %d", v2, err2, ref)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prog := compile(t, tc.src)
			ref := want(t, prog, tc.n)
			cfg := DefaultConfig()
			m := New(ir.CloneProgram(prog), cfg)
			tc.tune(&cfg, m)
			m.Cfg = cfg
			v, err := m.Run("main", tc.n)
			tc.check(t, m, v, err, ref)
		})
	}
}

func TestPredictorSingleExitBypass(t *testing.T) {
	f := ir.NewFunction("f", 0)
	b := f.NewBlock("entry")
	e := f.NewBlock("exit")
	ir.NewBuilder(f, b).Br(e)
	ir.NewBuilder(f, e).Ret(ir.NoReg)
	p := newPredictor(6)
	for i := 0; i < 5; i++ {
		if !p.observe("f", b, e.ID) {
			t.Fatal("single-exit block must always predict")
		}
	}
	if p.Lookups != 0 {
		t.Fatalf("single-exit blocks must not consume table lookups: %d", p.Lookups)
	}
}
