package timing

import (
	"testing"
)

// allocSrc exercises the paths the zero-allocation guarantee covers:
// nested calls (frame pool depth > 1), loops (issue-ring reuse across
// many blocks), and data-dependent branches (multi-exit blocks going
// through the predictor table). Control flow depends only on the
// argument, so every re-run takes exactly the same path.
const allocSrc = `
func leaf(a, b) { if (a < b) { return b - a; } return a - b; }
func fib(n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }
func main(n) {
  var s = 0;
  for (var i = 0; i < n; i = i + 1) {
    if (i % 3 == 0) { s = s + leaf(i, n); } else { s = s - 1; }
  }
  return s + fib(n % 10);
}`

// warmMachine builds a machine and re-runs it until every scratch
// structure (frames, issue ring, arg buffers, predictor table, meta
// cache) has reached steady state.
func warmMachine(t *testing.T, src string, arg int64) *Machine {
	t.Helper()
	m := New(compile(t, src), DefaultConfig())
	for i := 0; i < 4; i++ {
		m.Output = m.Output[:0]
		if _, err := m.Run("main", arg); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

// TestExecBlockSteadyStateAllocFree is the tentpole's proof
// obligation: once warm, a full re-run of the program — every
// execBlock, call, predictor lookup, and inflight-window operation —
// performs zero heap allocations.
func TestExecBlockSteadyStateAllocFree(t *testing.T) {
	m := warmMachine(t, allocSrc, 30)
	avg := testing.AllocsPerRun(20, func() {
		m.Output = m.Output[:0]
		if _, err := m.Run("main", 30); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state Run allocates %.1f allocs/run, want 0", avg)
	}
}

// TestFrameReuse checks that the depth-indexed frame pool hands back
// the same activation records run after run instead of allocating
// fresh ones.
func TestFrameReuse(t *testing.T) {
	m := warmMachine(t, allocSrc, 30)
	depths := len(m.frames)
	if depths == 0 {
		t.Fatal("no frames pooled after a run")
	}
	before := make([]*frame, depths)
	copy(before, m.frames)
	m.Output = m.Output[:0]
	if _, err := m.Run("main", 30); err != nil {
		t.Fatal(err)
	}
	if len(m.frames) != depths {
		t.Fatalf("frame pool grew on re-run: %d -> %d", depths, len(m.frames))
	}
	for d, fr := range m.frames {
		if fr != before[d] {
			t.Fatalf("depth-%d frame was reallocated", d)
		}
	}

	// The pool must also re-zero: frameAt hands out frames with the
	// fresh-allocation semantics (unwritten registers read 0).
	fr := m.frameAt(0, 8)
	fr.val[3], fr.time[3] = 42, 42
	fr = m.frameAt(0, 8)
	if fr.val[3] != 0 || fr.time[3] != 0 {
		t.Fatal("frameAt did not zero the reused frame")
	}
}

// TestPredictorLookupAllocFree checks that once the open-addressed
// table has seen a key set, further observe/lookup traffic on those
// keys does not allocate (the map[uint64]int it replaced allocated on
// growth and hashing).
func TestPredictorLookupAllocFree(t *testing.T) {
	p := newPredictor(6)
	h := fnv1a("main")
	// Populate: more keys than the initial table so at least one grow
	// happens during warmup, then the key set is fixed.
	for round := 0; round < 2; round++ {
		for blk := 0; blk < 300; blk++ {
			p.observeHashed(h, blk, blk%7)
		}
	}
	avg := testing.AllocsPerRun(100, func() {
		for blk := 0; blk < 300; blk++ {
			p.observeHashed(h, blk, blk%7)
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state predictor traffic allocates %.1f allocs/run, want 0", avg)
	}
}
