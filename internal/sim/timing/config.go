// Package timing implements a cycle-level timing model of an EDGE
// (TRIPS-like) processor core, standing in for the paper's validated
// TRIPS cycle simulator. It is execution-driven: blocks are
// interpreted for their values while every executed instruction is
// scheduled on a dataflow timing model.
//
// The model captures the first-order effects the paper's evaluation
// depends on:
//
//   - per-block fetch/map overhead, so reducing the number of blocks
//     executed directly reduces cycles;
//   - dynamic (dataflow) issue with a bounded issue width: a block
//     commits when all of its outputs are produced, so a long
//     falsely-predicated path does not serialize the block;
//   - predicates are data operands: a predicated instruction cannot
//     execute before its predicate resolves, which is the
//     tail-duplication penalty of §5 (e.g. an induction-variable
//     update that was control-independent becomes data-dependent on
//     a test);
//   - speculative next-block fetch with a history-based predictor and
//     a return-address stack: up to MaxInflight blocks overlap, and a
//     misprediction flushes the speculative work;
//   - a simple direct-mapped data cache and a load-store queue
//     latency.
package timing

// Config parameterizes the core model. The defaults approximate the
// TRIPS prototype's proportions (not its absolute latencies).
type Config struct {
	// IssueWidth is the number of instructions that may begin
	// execution per cycle within a block (TRIPS: 16-wide).
	IssueWidth int
	// MaxInflight is the number of blocks concurrently in flight
	// (TRIPS: 8, seven of them speculative).
	MaxInflight int
	// FetchCycles is the per-block fetch+map latency before any of
	// its instructions may issue. This is the "block overhead" of the
	// paper's §7.3 model.
	FetchCycles int
	// FetchGap is the pipelining interval between consecutive block
	// fetch starts.
	FetchGap int
	// CommitOverhead is the per-block commit cost after all outputs
	// are produced.
	CommitOverhead int
	// MispredictPenalty is the flush/refill cost added after the
	// resolving branch when the next-block prediction was wrong.
	MispredictPenalty int
	// RoutingLat models the operand network hop between a producer
	// and its consumers.
	RoutingLat int
	// LoadLat is the load-hit latency; CacheMissLat is added on a
	// data-cache miss.
	LoadLat      int
	CacheMissLat int
	// CacheLines and CacheLineWords configure the direct-mapped data
	// cache (CacheLines == 0 disables the cache: every access hits).
	CacheLines     int
	CacheLineWords int
	// HistoryLen is the exit-predictor history length in blocks.
	HistoryLen int
	// MaxSteps bounds executed instructions (0 = 500M).
	MaxSteps int64
	// MaxCycles bounds the simulated cycle count: a run whose commit
	// clock passes it aborts with a *StuckError (ErrWatchdog) instead
	// of spinning (0 = DefaultMaxCycles, far above any workload;
	// negative disables the bound).
	MaxCycles int64
	// WatchdogGap is the commit-progress watchdog: if a block's commit
	// lands more than WatchdogGap cycles after the previous commit —
	// no instruction committed for that long — the run aborts with a
	// *StuckError naming the in-flight blocks and the stalled
	// instructions' missing operands (0 = DefaultWatchdogGap; negative
	// disables the watchdog).
	WatchdogGap int64
}

// DefaultMaxCycles and DefaultWatchdogGap are the bounds applied when
// the corresponding Config field is zero. Both sit orders of
// magnitude above anything a legitimate workload produces: the
// longest table runs commit every few thousand cycles and finish
// under a billion.
const (
	DefaultMaxCycles   = 1_000_000_000_000
	DefaultWatchdogGap = 1_000_000
)

// maxCycles returns the effective cycle budget (0 = unlimited).
func (c Config) maxCycles() int64 {
	if c.MaxCycles == 0 {
		return DefaultMaxCycles
	}
	if c.MaxCycles < 0 {
		return 0
	}
	return c.MaxCycles
}

// watchdogGap returns the effective commit-gap bound (0 = disabled).
func (c Config) watchdogGap() int64 {
	if c.WatchdogGap == 0 {
		return DefaultWatchdogGap
	}
	if c.WatchdogGap < 0 {
		return 0
	}
	return c.WatchdogGap
}

// DefaultConfig returns the standard model parameters.
func DefaultConfig() Config {
	return Config{
		IssueWidth:        16,
		MaxInflight:       8,
		FetchCycles:       8,
		FetchGap:          4,
		CommitOverhead:    3,
		MispredictPenalty: 12,
		RoutingLat:        1,
		LoadLat:           3,
		CacheMissLat:      14,
		CacheLines:        256,
		CacheLineWords:    4,
		HistoryLen:        6,
	}
}

// latency returns the execution latency of an opcode class.
func (c Config) latency(class latClass) int64 {
	switch class {
	case latMul:
		return 3
	case latDiv:
		return 12
	default:
		return 1
	}
}

type latClass int

const (
	latSimple latClass = iota
	latMul
	latDiv
)
