package timing

import (
	"testing"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/sim/functional"
	"repro/internal/trips"
)

func compile(t *testing.T, src string) *ir.Program {
	t.Helper()
	prog, err := lang.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

const loopSrc = `
func main(n) {
  var s = 0;
  for (var i = 0; i < n; i = i + 1) { s = s + i; }
  return s;
}`

func TestResultsMatchFunctional(t *testing.T) {
	srcs := []string{
		loopSrc,
		`array a[16];
		 func main(n) {
		   for (var i = 0; i < 16; i = i + 1) { a[i] = i * i; }
		   var s = 0;
		   for (var j = 0; j < n; j = j + 1) { s = s + a[j % 16]; }
		   print(s);
		   return s;
		 }`,
		`func fib(n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }
		 func main(n) { return fib(n % 12); }`,
	}
	for si, src := range srcs {
		prog := compile(t, src)
		for _, n := range []int64{0, 1, 5, 23} {
			wantV, wantOut, _, err := functional.RunProgram(ir.CloneProgram(prog), "main", n)
			if err != nil {
				t.Fatal(err)
			}
			m := New(ir.CloneProgram(prog), DefaultConfig())
			gotV, err := m.Run("main", n)
			if err != nil {
				t.Fatalf("src %d n %d: %v", si, n, err)
			}
			if gotV != wantV {
				t.Fatalf("src %d n %d: %d != %d", si, n, gotV, wantV)
			}
			if len(m.Output) != len(wantOut) {
				t.Fatalf("src %d n %d: output mismatch", si, n)
			}
			if m.Stats.Cycles <= 0 {
				t.Fatalf("src %d: no cycles recorded", si)
			}
		}
	}
}

func TestCyclesScaleWithWork(t *testing.T) {
	prog := compile(t, loopSrc)
	cyc := func(n int64) int64 {
		m := New(ir.CloneProgram(prog), DefaultConfig())
		if _, err := m.Run("main", n); err != nil {
			t.Fatal(err)
		}
		return m.Stats.Cycles
	}
	c10, c100, c1000 := cyc(10), cyc(100), cyc(1000)
	if !(c10 < c100 && c100 < c1000) {
		t.Fatalf("cycles must scale: %d, %d, %d", c10, c100, c1000)
	}
	// Roughly linear: 10x work within 5x..20x cycles.
	if c1000 < c100*5 || c1000 > c100*20 {
		t.Fatalf("scaling off: c100=%d c1000=%d", c100, c1000)
	}
}

func TestBlockOverheadMatters(t *testing.T) {
	// The same computation split over more blocks must cost more
	// cycles (block overhead): compare a branchy loop against its
	// hyperblock-formed version.
	src := `
func main(n) {
  var s = 0;
  for (var i = 0; i < n; i = i + 1) {
    if ((i & 1) == 0) { s = s + i; } else { s = s + 1; }
  }
  return s;
}`
	prog := compile(t, src)
	m0 := New(ir.CloneProgram(prog), DefaultConfig())
	if _, err := m0.Run("main", 500); err != nil {
		t.Fatal(err)
	}
	formed := ir.CloneProgram(prog)
	core.FormProgram(formed, core.Config{Cons: trips.Default(), IterOpt: true, HeadDup: true}, nil)
	m1 := New(formed, DefaultConfig())
	if _, err := m1.Run("main", 500); err != nil {
		t.Fatal(err)
	}
	if m1.Stats.Blocks >= m0.Stats.Blocks {
		t.Fatalf("formation should reduce blocks: %d -> %d", m0.Stats.Blocks, m1.Stats.Blocks)
	}
	if m1.Stats.Cycles >= m0.Stats.Cycles {
		t.Fatalf("fewer blocks should be faster: %d -> %d cycles",
			m0.Stats.Cycles, m1.Stats.Cycles)
	}
}

func TestPredictableVsUnpredictableBranches(t *testing.T) {
	// A data-dependent alternating-vs-chaotic branch: the chaotic
	// version must mispredict more and run slower.
	predictable := `
func main(n) {
  var s = 0;
  for (var i = 0; i < n; i = i + 1) {
    if ((i & 1) == 0) { s = s + 1; } else { s = s + 2; }
  }
  return s;
}`
	chaotic := `
func main(n) {
  var s = 0;
  var x = 12345;
  for (var i = 0; i < n; i = i + 1) {
    x = (x * 48271) % 2147483647;
    if ((x >> 7) & 1) { s = s + 1; } else { s = s + 2; }
  }
  return s;
}`
	run := func(src string) Stats {
		m := New(compile(t, src), DefaultConfig())
		if _, err := m.Run("main", 2000); err != nil {
			t.Fatal(err)
		}
		return m.Stats
	}
	sp := run(predictable)
	sc := run(chaotic)
	if sc.MispredictRate() <= sp.MispredictRate() {
		t.Fatalf("chaotic branch must mispredict more: %.3f vs %.3f",
			sc.MispredictRate(), sp.MispredictRate())
	}
	if sc.Flushes <= sp.Flushes {
		t.Fatalf("chaotic branch must flush more: %d vs %d", sc.Flushes, sp.Flushes)
	}
}

func TestPredicateDependenceDelaysOutputs(t *testing.T) {
	// Two hand-built single-block functions computing the same thing:
	// in one, a long dependence chain feeds the predicate of the
	// final write; in the other the write is unpredicated. The
	// predicated version must take at least as many cycles.
	build := func(predicated bool) *ir.Program {
		p := ir.NewProgram()
		f := ir.NewFunction("f", 1)
		b := f.NewBlock("entry")
		bd := ir.NewBuilder(f, b)
		x := f.Params[0]
		for i := 0; i < 12; i++ {
			x = bd.Bin(ir.OpMul, x, x) // long latency chain
		}
		z := bd.Const(0)
		c := bd.Bin(ir.OpCmpGE, x, z)
		out := f.NewReg()
		bd.ConstInto(out, 7)
		if predicated {
			b.Append(&ir.Instr{Op: ir.OpNullW, Dst: out, A: ir.NoReg, B: ir.NoReg, Pred: c, PredSense: true})
			b.Append(&ir.Instr{Op: ir.OpNullW, Dst: out, A: ir.NoReg, B: ir.NoReg, Pred: c, PredSense: false})
		}
		bd.Ret(out)
		p.AddFunc(f)
		return p
	}
	cyc := func(p *ir.Program) int64 {
		m := New(p, DefaultConfig())
		if _, err := m.Run("f", 3); err != nil {
			t.Fatal(err)
		}
		return m.Stats.Cycles
	}
	free := cyc(build(false))
	gated := cyc(build(true))
	if gated < free {
		t.Fatalf("predicated outputs cannot be faster: %d < %d", gated, free)
	}
}

func TestCacheModel(t *testing.T) {
	src := `
array big[4096];
func main(n) {
  var s = 0;
  for (var r = 0; r < 4; r = r + 1) {
    for (var i = 0; i < n; i = i + 1) { s = s + big[i]; }
  }
  return s;
}`
	// Small working set: high hit rate after warmup. Large working
	// set exceeding the 256-line x 4-word cache: many misses.
	small := New(compile(t, src), DefaultConfig())
	if _, err := small.Run("main", 64); err != nil {
		t.Fatal(err)
	}
	large := New(compile(t, src), DefaultConfig())
	if _, err := large.Run("main", 4096); err != nil {
		t.Fatal(err)
	}
	smallRate := float64(small.Stats.CacheMisses) / float64(small.Stats.CacheAccesses)
	largeRate := float64(large.Stats.CacheMisses) / float64(large.Stats.CacheAccesses)
	if largeRate <= smallRate {
		t.Fatalf("large working set must miss more: %.3f vs %.3f", largeRate, smallRate)
	}
	// Disabling the cache removes miss accounting.
	cfg := DefaultConfig()
	cfg.CacheLines = 0
	off := New(compile(t, src), cfg)
	if _, err := off.Run("main", 4096); err != nil {
		t.Fatal(err)
	}
	if off.Stats.CacheMisses != 0 || off.Stats.CacheAccesses != 0 {
		t.Fatal("disabled cache must not record accesses")
	}
}

func TestIssueWidthContention(t *testing.T) {
	// A block with many independent instructions: narrower issue
	// width must take more cycles.
	build := func() *ir.Program {
		p := ir.NewProgram()
		f := ir.NewFunction("f", 2)
		b := f.NewBlock("entry")
		bd := ir.NewBuilder(f, b)
		var last ir.Reg
		for i := 0; i < 64; i++ {
			last = bd.Bin(ir.OpAdd, f.Params[0], f.Params[1])
		}
		bd.Ret(last)
		p.AddFunc(f)
		return p
	}
	wide := DefaultConfig()
	narrow := DefaultConfig()
	narrow.IssueWidth = 1
	mw := New(build(), wide)
	if _, err := mw.Run("f", 1, 2); err != nil {
		t.Fatal(err)
	}
	mn := New(build(), narrow)
	if _, err := mn.Run("f", 1, 2); err != nil {
		t.Fatal(err)
	}
	if mn.Stats.Cycles <= mw.Stats.Cycles {
		t.Fatalf("narrow issue must be slower: %d vs %d", mn.Stats.Cycles, mw.Stats.Cycles)
	}
}

func TestMispredictPenaltyConfigurable(t *testing.T) {
	chaotic := `
func main(n) {
  var s = 0;
  var x = 99991;
  for (var i = 0; i < n; i = i + 1) {
    x = (x * 48271) % 2147483647;
    if (x % 2 == 0) { s = s + 1; } else { s = s - 1; }
  }
  return s;
}`
	cheap := DefaultConfig()
	cheap.MispredictPenalty = 0
	dear := DefaultConfig()
	dear.MispredictPenalty = 60
	m1 := New(compile(t, chaotic), cheap)
	if _, err := m1.Run("main", 1000); err != nil {
		t.Fatal(err)
	}
	m2 := New(compile(t, chaotic), dear)
	if _, err := m2.Run("main", 1000); err != nil {
		t.Fatal(err)
	}
	if m2.Stats.Cycles <= m1.Stats.Cycles {
		t.Fatalf("higher flush penalty must cost cycles: %d vs %d",
			m2.Stats.Cycles, m1.Stats.Cycles)
	}
}

func TestErrorPaths(t *testing.T) {
	prog := compile(t, loopSrc)
	m := New(prog, DefaultConfig())
	if _, err := m.Run("nosuch"); err == nil {
		t.Fatal("unknown function must fail")
	}
	if _, err := m.Run("main"); err == nil {
		t.Fatal("arity mismatch must fail")
	}
	cfg := DefaultConfig()
	cfg.MaxSteps = 10
	m2 := New(compile(t, loopSrc), cfg)
	if _, err := m2.Run("main", 100000); err != ErrFuel {
		t.Fatalf("want ErrFuel, got %v", err)
	}
}

func TestSingleExitAlwaysPredicted(t *testing.T) {
	// A straight-line chain of single-exit blocks never mispredicts.
	src := `func main(a) { var x = a + 1; var y = x * 2; return y; }`
	m := New(compile(t, src), DefaultConfig())
	if _, err := m.Run("main", 5); err != nil {
		t.Fatal(err)
	}
	if m.Stats.Mispredicts != 0 {
		t.Fatalf("straight-line code mispredicted %d times", m.Stats.Mispredicts)
	}
}
