package timing

import "repro/internal/ir"

// Exit outcome encoding for the predictor: a successor block ID, or
// retOutcome for a return exit.
const retOutcome = -2

// predictor is the next-block predictor: a last-outcome table indexed
// by a hash of (function, block, recent exit history). Blocks with a
// single static exit outcome are inherently predictable and bypass
// the table; calls are direct and returns are covered by a (perfect)
// return-address stack, matching the strong call/return prediction of
// real front ends.
//
// The table is an open-addressed linear-probe map storing the full
// 64-bit key, so lookups have exactly the same hit/miss behaviour as
// the map[uint64]int it replaces while staying allocation-free in
// steady state (the backing array grows only while new (fn, block,
// history) combinations are still being discovered).
type predictor struct {
	historyLen int
	history    uint64

	entries []predEntry
	live    int

	// Lookups and Mispredicts count dynamic multi-exit predictions.
	Lookups     int64
	Mispredicts int64
}

// predEntry is one open-addressing slot; used distinguishes an
// occupied slot from an empty one (keys may legitimately be zero).
type predEntry struct {
	key  uint64
	val  int32
	used bool
}

const predInitialSize = 256 // power of two

func newPredictor(historyLen int) *predictor {
	if historyLen <= 0 {
		historyLen = 6
	}
	return &predictor{historyLen: historyLen}
}

// fnv1a is the predictor's function-name hash component. Machines
// precompute it once per function (see funcMeta); the test-facing
// observe wrapper computes it on the fly.
func fnv1a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return h
}

// key combines the precomputed function hash, the block ID, and the
// current exit history. The value is identical to the original
// map-keyed implementation, so table contents (and therefore the
// predicted outcomes and mispredict counts) are bit-identical.
func (p *predictor) key(fnHash uint64, blockID int) uint64 {
	return fnHash ^
		uint64(uint32(blockID))*0x9e3779b97f4a7c15 ^
		p.history*0xbf58476d1ce4e5b9
}

// observe is the test-facing convenience wrapper: it hashes the
// function name and classifies the block on every call. The machine's
// hot path uses observeHashed with both cached (see funcMeta).
func (p *predictor) observe(fn string, b *ir.Block, actual int) bool {
	if _, single := singleExitOutcome(b); single {
		return true
	}
	return p.observeHashed(fnv1a(fn), b.ID, actual)
}

// observeHashed records one dynamic exit of a multi-exit block and
// reports whether it was predicted correctly. Single-outcome blocks
// must be filtered by the caller (they always predict correctly and
// must not touch the table, the history, or the lookup counters).
func (p *predictor) observeHashed(fnHash uint64, blockID, actual int) bool {
	p.Lookups++
	k := p.key(fnHash, blockID)
	pred, known := p.lookup(k)
	correct := known && pred == actual
	if !correct {
		p.Mispredicts++
	}
	p.insert(k, actual)
	p.history = (p.history<<4 | uint64(uint32(actual)&15)) & ((1 << (4 * uint(p.historyLen))) - 1)
	return correct
}

// lookup finds the exact key (linear probing).
func (p *predictor) lookup(k uint64) (int, bool) {
	if len(p.entries) == 0 {
		return 0, false
	}
	mask := uint64(len(p.entries) - 1)
	for i := k & mask; ; i = (i + 1) & mask {
		e := &p.entries[i]
		if !e.used {
			return 0, false
		}
		if e.key == k {
			return int(e.val), true
		}
	}
}

// insert stores or overwrites the key's last outcome, growing the
// table at 3/4 load so probe chains stay short.
func (p *predictor) insert(k uint64, val int) {
	if len(p.entries) == 0 {
		p.entries = make([]predEntry, predInitialSize)
	} else if 4*(p.live+1) > 3*len(p.entries) {
		p.grow()
	}
	mask := uint64(len(p.entries) - 1)
	for i := k & mask; ; i = (i + 1) & mask {
		e := &p.entries[i]
		if e.used && e.key != k {
			continue
		}
		if !e.used {
			p.live++
		}
		e.key, e.val, e.used = k, int32(val), true
		return
	}
}

func (p *predictor) grow() {
	old := p.entries
	p.entries = make([]predEntry, 2*len(old))
	mask := uint64(len(p.entries) - 1)
	for _, e := range old {
		if !e.used {
			continue
		}
		for i := e.key & mask; ; i = (i + 1) & mask {
			if !p.entries[i].used {
				p.entries[i] = e
				break
			}
		}
	}
}

// singleExitOutcome returns the block's only possible exit outcome
// when it has exactly one distinct outcome (one branch target and no
// return, or returns only).
func singleExitOutcome(b *ir.Block) (int, bool) {
	outcome := -1
	seen := false
	for _, in := range b.Instrs {
		var o int
		switch in.Op {
		case ir.OpRet:
			o = retOutcome
		case ir.OpBr:
			o = in.Target.ID
		default:
			continue
		}
		if !seen {
			outcome, seen = o, true
		} else if outcome != o {
			return -1, false
		}
	}
	return outcome, seen
}
