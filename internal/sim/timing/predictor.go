package timing

import "repro/internal/ir"

// Exit outcome encoding for the predictor: a successor block ID, or
// retOutcome for a return exit.
const retOutcome = -2

// predictor is the next-block predictor: a last-outcome table indexed
// by a hash of (function, block, recent exit history). Blocks with a
// single static exit outcome are inherently predictable and bypass
// the table; calls are direct and returns are covered by a (perfect)
// return-address stack, matching the strong call/return prediction of
// real front ends.
type predictor struct {
	historyLen int
	history    uint64
	table      map[uint64]int // hashed (fn, block, history) -> predicted outcome

	// Lookups and Mispredicts count dynamic multi-exit predictions.
	Lookups     int64
	Mispredicts int64
}

func newPredictor(historyLen int) *predictor {
	if historyLen <= 0 {
		historyLen = 6
	}
	return &predictor{historyLen: historyLen, table: map[uint64]int{}}
}

func (p *predictor) key(fn string, blockID int) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(fn); i++ {
		h = (h ^ uint64(fn[i])) * 1099511628211
	}
	h ^= uint64(uint32(blockID)) * 0x9e3779b97f4a7c15
	h ^= p.history * 0xbf58476d1ce4e5b9
	return h
}

// observe records one dynamic exit of a block and reports whether it
// was predicted correctly. Single-outcome blocks always predict
// correctly.
func (p *predictor) observe(fn string, b *ir.Block, actual int) bool {
	if out, single := singleExitOutcome(b); single {
		_ = out
		return true
	}
	p.Lookups++
	k := p.key(fn, b.ID)
	pred, known := p.table[k]
	correct := known && pred == actual
	if !correct {
		p.Mispredicts++
	}
	p.table[k] = actual
	p.history = (p.history<<4 | uint64(uint32(actual)&15)) & ((1 << (4 * uint(p.historyLen))) - 1)
	return correct
}

// singleExitOutcome returns the block's only possible exit outcome
// when it has exactly one distinct outcome (one branch target and no
// return, or returns only).
func singleExitOutcome(b *ir.Block) (int, bool) {
	outcome := -1
	seen := false
	for _, in := range b.Instrs {
		var o int
		switch in.Op {
		case ir.OpRet:
			o = retOutcome
		case ir.OpBr:
			o = in.Target.ID
		default:
			continue
		}
		if !seen {
			outcome, seen = o, true
		} else if outcome != o {
			return -1, false
		}
	}
	return outcome, seen
}
