package timing

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/ir"
	"repro/internal/sim/functional"
)

// Stats aggregates the timing run's counters.
type Stats struct {
	// Cycles is the cycle count at the final block's commit.
	Cycles int64
	// Blocks is the number of blocks executed.
	Blocks int64
	// Executed counts executed (predicate-satisfied) instructions.
	Executed int64
	// Fetched counts instruction slots in executed blocks.
	Fetched int64
	// ExitLookups and Mispredicts summarize multi-exit block
	// prediction; Flushes counts pipeline flushes taken.
	ExitLookups int64
	Mispredicts int64
	Flushes     int64
	// CacheAccesses and CacheMisses count data-cache behaviour.
	CacheAccesses int64
	CacheMisses   int64
	// Calls counts function invocations.
	Calls int64
	// Faults tallies injected faults when an Injector is attached
	// (zero otherwise).
	Faults FaultCounts
}

// MispredictRate returns mispredicts per multi-exit lookup.
func (s Stats) MispredictRate() float64 {
	if s.ExitLookups == 0 {
		return 0
	}
	return float64(s.Mispredicts) / float64(s.ExitLookups)
}

// ErrFuel reports that the run exceeded its instruction budget.
var ErrFuel = errors.New("timing: instruction budget exhausted")

// Machine is the cycle-level simulator.
//
// All per-block and per-call scratch state (issue-slot occupancy,
// activation frames, argument marshalling, operand-use buffers) is
// owned by the Machine and reused across blocks and calls, so a run
// is allocation-free in steady state: buffers grow while the run
// discovers its deepest call chain and widest block, then stabilize.
type Machine struct {
	Prog *ir.Program
	Cfg  Config
	// Mem is the data memory image; Output the print stream.
	Mem    []int64
	Output []int64
	Stats  Stats

	// Inject, when non-nil, receives the model's fault-injection
	// queries (see Injector). Faults perturb timing only; the
	// architectural results are unchanged by construction.
	Inject Injector

	pred *predictor
	// cache holds one tag per line; -1 means invalid.
	cache []int64

	// Pipeline state.
	prevFetchStart int64
	lastCommitDone int64
	nextFetchMin   int64
	inflight       []inflightBlock // recent blocks and their commit cycles

	// recs records the current block's executed instructions for the
	// watchdog's StuckReport (reused across blocks).
	recs []instrRec

	// Issue-slot scratch: issueCnt[i] is the number of instructions
	// issued at cycle readyBase+i in the current block, valid only when
	// issueGen[i] == issueGenID. Bumping the generation per block makes
	// clearing O(1) and the dense ring replaces the per-block
	// map[int64]int the hot loop used to allocate.
	issueCnt   []int32
	issueGen   []int64
	issueGenID int64

	// frames pools one activation per call depth; argv/argt pool the
	// call-argument marshalling slices per depth (safe because call()
	// copies them into the callee frame before executing it).
	frames []*frame
	argv   [][]int64
	argt   [][]int64

	// useBuf is the shared Instr.Uses scratch; runTimes the Run()
	// argument-time scratch.
	useBuf   []ir.Reg
	runTimes []int64

	// fnMeta caches per-function predictor inputs (name hash,
	// per-block single-exit classification). The program is immutable
	// while the machine runs, so entries never invalidate.
	fnMeta map[*ir.Function]*funcMeta

	// ctx, when non-nil, is polled between blocks so a canceled run
	// returns instead of simulating on (see RunContext).
	ctx context.Context

	steps int64
	depth int

	// TraceBlock, when set to "fn.block", prints a one-line timing
	// summary for each execution of that block (debugging aid).
	TraceBlock string
	traced     int
}

// funcMeta is the per-function cache backing the predictor fast path:
// the function-name FNV hash (a predictor key component) and a lazy
// per-block classification of single- vs multi-exit blocks, so the
// O(instrs) singleExitOutcome scan runs once per static block instead
// of once per dynamic execution.
type funcMeta struct {
	hash       uint64
	singleExit []int8 // by block ID: 0 unknown, 1 multi-exit, 2 single-exit
}

func (fm *funcMeta) isSingleExit(b *ir.Block) bool {
	for b.ID >= len(fm.singleExit) {
		fm.singleExit = append(fm.singleExit, 0)
	}
	switch fm.singleExit[b.ID] {
	case 1:
		return false
	case 2:
		return true
	}
	_, single := singleExitOutcome(b)
	if single {
		fm.singleExit[b.ID] = 2
	} else {
		fm.singleExit[b.ID] = 1
	}
	return single
}

func (m *Machine) meta(f *ir.Function) *funcMeta {
	if fm, ok := m.fnMeta[f]; ok {
		return fm
	}
	if m.fnMeta == nil {
		m.fnMeta = make(map[*ir.Function]*funcMeta)
	}
	maxID := 0
	for _, b := range f.Blocks {
		if b.ID > maxID {
			maxID = b.ID
		}
	}
	fm := &funcMeta{hash: fnv1a(f.Name), singleExit: make([]int8, maxID+1)}
	m.fnMeta[f] = fm
	return fm
}

// New creates a machine over prog with the given configuration.
func New(prog *ir.Program, cfg Config) *Machine {
	if cfg.IssueWidth == 0 {
		cfg = DefaultConfig()
	}
	m := &Machine{Prog: prog, Cfg: cfg, pred: newPredictor(cfg.HistoryLen)}
	m.Mem = make([]int64, prog.MemSize)
	for addr, v := range prog.InitData {
		m.Mem[addr] = v
	}
	if cfg.CacheLines > 0 {
		m.cache = make([]int64, cfg.CacheLines)
		for i := range m.cache {
			m.cache[i] = -1
		}
	}
	return m
}

// Run simulates the named function and returns its result value.
// Stats.Cycles holds the total cycle count afterwards. On error the
// counters still reflect the partial run (cycles up to the last
// commit, faults injected so far), so a watchdog abort remains
// observable in the stats.
func (m *Machine) Run(fn string, args ...int64) (int64, error) {
	f := m.Prog.Func(fn)
	if f == nil {
		return 0, fmt.Errorf("timing: no function %q", fn)
	}
	if len(args) != len(f.Params) {
		return 0, fmt.Errorf("timing: %s takes %d args, got %d", fn, len(f.Params), len(args))
	}
	if cap(m.runTimes) < len(args) {
		m.runTimes = make([]int64, len(args))
	}
	times := m.runTimes[:len(args)]
	clear(times)
	v, _, err := m.call(f, args, times)
	m.Stats.Cycles = m.lastCommitDone
	m.Stats.ExitLookups = m.pred.Lookups
	m.Stats.Mispredicts = m.pred.Mispredicts
	if err != nil {
		return 0, err
	}
	return v, nil
}

// RunContext is Run with cooperative cancellation: the machine polls
// ctx between block executions and aborts with ctx's error once it is
// done, so a driver's deadline stops the simulation instead of
// abandoning it mid-flight.
func (m *Machine) RunContext(ctx context.Context, fn string, args ...int64) (int64, error) {
	m.ctx = ctx
	defer func() { m.ctx = nil }()
	return m.Run(fn, args...)
}

// inflightBlock is one entry of the speculation window.
type inflightBlock struct {
	commit    int64
	fn, block string
}

// instrRec is the watchdog's per-instruction execution record.
type instrRec struct {
	index           int
	op              ir.Op
	dst             ir.Reg
	waits           ir.Reg
	ready, complete int64
}

// frame is a function activation: register values and readiness
// times. Frames are pooled by call depth; an activation at depth d is
// dead by the time another call reaches depth d, so reuse is safe.
type frame struct {
	val  []int64
	time []int64
}

// frameAt returns the pooled frame for the given depth, sized and
// zeroed for nregs registers (matching the fresh-allocation semantics
// the simulator was written against: unwritten registers read 0).
func (m *Machine) frameAt(depth, nregs int) *frame {
	for len(m.frames) <= depth {
		m.frames = append(m.frames, &frame{})
	}
	fr := m.frames[depth]
	if cap(fr.val) < nregs {
		fr.val = make([]int64, nregs)
		fr.time = make([]int64, nregs)
	} else {
		fr.val = fr.val[:nregs]
		fr.time = fr.time[:nregs]
		clear(fr.val)
		clear(fr.time)
	}
	return fr
}

// argScratch returns the pooled argument value/time slices for the
// given depth. The contents are fully overwritten by the caller.
func (m *Machine) argScratch(depth, n int) (vals, times []int64) {
	for len(m.argv) <= depth {
		m.argv = append(m.argv, nil)
		m.argt = append(m.argt, nil)
	}
	if cap(m.argv[depth]) < n {
		m.argv[depth] = make([]int64, n)
		m.argt[depth] = make([]int64, n)
	}
	return m.argv[depth][:n], m.argt[depth][:n]
}

func (m *Machine) call(f *ir.Function, args, argTimes []int64) (int64, int64, error) {
	if m.depth >= 512 {
		return 0, 0, fmt.Errorf("timing: call depth exceeds 512")
	}
	m.depth++
	defer func() { m.depth-- }()
	m.Stats.Calls++

	fr := m.frameAt(m.depth, f.NumRegs())
	for i, p := range f.Params {
		fr.val[p] = args[i]
		fr.time[p] = argTimes[i]
	}
	fm := m.meta(f)
	b := f.Entry()
	for {
		res, err := m.execBlock(f, fm, b, fr)
		if err != nil {
			return 0, 0, err
		}
		if res.ret {
			return res.retVal, res.retTime, nil
		}
		b = res.next
	}
}

type blockResult struct {
	next    *ir.Block
	ret     bool
	retVal  int64
	retTime int64
}

func (m *Machine) execBlock(f *ir.Function, fm *funcMeta, b *ir.Block, fr *frame) (blockResult, error) {
	cfg := m.Cfg
	var res blockResult

	// Cooperative cancellation: one cheap poll per block execution.
	if m.ctx != nil {
		select {
		case <-m.ctx.Done():
			return res, fmt.Errorf("timing: %s.%s: %w", f.Name, b.Name, m.ctx.Err())
		default:
		}
	}
	site := Site{Fn: f.Name, Block: b.Name, Seq: m.Stats.Blocks}

	// Fetch/map: pipelined behind the previous block, bounded by the
	// in-flight window, and delayed by a pending misprediction flush.
	fetchStart := m.prevFetchStart + int64(cfg.FetchGap)
	if fetchStart < m.nextFetchMin {
		fetchStart = m.nextFetchMin
	}
	if n := len(m.inflight); cfg.MaxInflight > 0 && n >= cfg.MaxInflight {
		if w := m.inflight[n-cfg.MaxInflight].commit; fetchStart < w {
			fetchStart = w
		}
	}
	// Injection point: a transient fetch/map stall.
	if m.Inject != nil {
		if d := m.Inject.FetchStall(site); d > 0 {
			fetchStart += d
			m.Stats.Faults.FetchStalls++
			m.Stats.Faults.ExtraCycles += d
		}
	}
	m.prevFetchStart = fetchStart
	m.nextFetchMin = 0
	readyBase := fetchStart + int64(cfg.FetchCycles)

	m.Stats.Blocks++
	m.Stats.Fetched += int64(len(b.Instrs))
	maxSteps := cfg.MaxSteps
	if maxSteps == 0 {
		maxSteps = 500_000_000
	}
	watchGap, cycleBudget := cfg.watchdogGap(), cfg.maxCycles()
	watching := watchGap > 0 || cycleBudget > 0

	// Fresh issue-slot generation: every slot of the dense ring is
	// logically zero again without touching the backing arrays.
	m.issueGenID++
	gen := m.issueGenID
	issueSlots := 0 // distinct issue cycles used (trace reporting)
	blockDone := readyBase
	exitOutcome := 0
	exitResolve := int64(0)
	exits := 0
	m.recs = m.recs[:0]

	for idx, in := range b.Instrs {
		if m.steps >= maxSteps {
			return res, ErrFuel
		}
		m.steps++
		if in.Predicated() {
			if (fr.val[in.Pred] != 0) != in.PredSense {
				continue
			}
		}
		m.Stats.Executed++

		// Dataflow readiness: operands (including the predicate).
		// waits remembers the operand that resolved last — the one the
		// instruction is "waiting on" in a StuckReport.
		ready := readyBase
		waits := ir.NoReg
		m.useBuf = in.Uses(m.useBuf[:0])
		for _, r := range m.useBuf {
			if t := fr.time[r]; t > ready {
				ready = t
				waits = r
			}
		}
		// Issue-width contention within the block. ready >= readyBase,
		// so the slot offset is non-negative; the ring grows (amortized)
		// to the block's longest dependence chain and is then reused.
		off := ready - readyBase
		for int64(len(m.issueCnt)) <= off {
			m.issueCnt = append(m.issueCnt, 0)
			m.issueGen = append(m.issueGen, 0)
		}
		for m.issueGen[off] == gen && int(m.issueCnt[off]) >= cfg.IssueWidth {
			off++
			if int64(len(m.issueCnt)) <= off {
				m.issueCnt = append(m.issueCnt, 0)
				m.issueGen = append(m.issueGen, 0)
			}
		}
		if m.issueGen[off] != gen {
			m.issueGen[off] = gen
			m.issueCnt[off] = 1
			issueSlots++
		} else {
			m.issueCnt[off]++
		}
		issueAt := readyBase + off

		// Injection point: operand-network hop jitter on the result's
		// route to its consumers.
		routing := int64(cfg.RoutingLat)
		if m.Inject != nil {
			if d := m.Inject.HopJitter(site, idx); d > 0 {
				routing += d
				m.Stats.Faults.HopJitters++
				m.Stats.Faults.ExtraCycles += d
			}
		}

		var complete int64
		switch in.Op {
		case ir.OpMul:
			complete = issueAt + cfg.latency(latMul)
		case ir.OpDiv, ir.OpRem:
			complete = issueAt + cfg.latency(latDiv)
		default:
			complete = issueAt + cfg.latency(latSimple)
		}

		switch in.Op {
		case ir.OpLoad:
			// Speculative-load semantics: out-of-range addresses read
			// zero (a wrong-path load's value is only observable
			// through a predicated commit, which will not fire).
			addr := fr.val[in.A] + in.Imm
			var v int64
			if addr >= 0 && addr < int64(len(m.Mem)) {
				v = m.Mem[addr]
			}
			complete = issueAt + int64(cfg.LoadLat) + m.cacheAccess(addr)
			fr.val[in.Dst] = v
			fr.time[in.Dst] = complete + routing
		case ir.OpStore:
			addr := fr.val[in.A] + in.Imm
			if addr < 0 || addr >= int64(len(m.Mem)) {
				return res, fmt.Errorf("timing: %s.%s: store out of bounds %d", f.Name, b.Name, addr)
			}
			complete = issueAt + 1 + m.cacheAccess(addr)
			m.Mem[addr] = fr.val[in.B]
		case ir.OpBr:
			exits++
			exitOutcome = in.Target.ID
			exitResolve = complete
			res.next = in.Target
		case ir.OpRet:
			exits++
			exitOutcome = retOutcome
			exitResolve = complete
			res.ret = true
			if in.A.Valid() {
				res.retVal = fr.val[in.A]
				res.retTime = fr.time[in.A]
			}
		case ir.OpCall:
			if in.Callee == "print" && m.Prog.Externs["print"] {
				m.Output = append(m.Output, fr.val[in.Args[0]])
				break
			}
			callee := m.Prog.Func(in.Callee)
			if callee == nil {
				return res, fmt.Errorf("timing: unknown callee %q", in.Callee)
			}
			vals, times := m.argScratch(m.depth, len(in.Args))
			for i, a := range in.Args {
				vals[i] = fr.val[a]
				times[i] = fr.time[a]
			}
			v, t, err := m.call(callee, vals, times)
			if err != nil {
				return res, err
			}
			if t < issueAt {
				t = issueAt
			}
			complete = t + 1
			if in.Dst.Valid() {
				fr.val[in.Dst] = v
				fr.time[in.Dst] = complete + routing
			}
			// A call's subtree rebuilt the record buffer; start the
			// current block's records over (the call dominates any
			// earlier stall anyway).
			m.recs = m.recs[:0]
		case ir.OpNullW:
			// Output production only: completes when the predicate
			// allows it; the value is unchanged.
		default:
			v, ok := functional.EvalPure(in.Op, m.operand(fr, in.A), m.operand(fr, in.B), in.Imm)
			if !ok {
				return res, fmt.Errorf("timing: cannot execute %s", in.Op)
			}
			fr.val[in.Dst] = v
			fr.time[in.Dst] = complete + routing
		}
		if exits > 1 {
			return res, fmt.Errorf("timing: %s.%s fired multiple exits", f.Name, b.Name)
		}
		if complete > blockDone {
			blockDone = complete
		}
		if watching {
			m.recs = append(m.recs, instrRec{
				index: idx, op: in.Op, dst: in.Def(),
				waits: waits, ready: ready, complete: complete,
			})
		}
	}
	if exits == 0 {
		return res, fmt.Errorf("timing: %s.%s produced no exit", f.Name, b.Name)
	}

	// Commit: in order, after all outputs are produced.
	prevCommit := m.lastCommitDone
	commitDone := blockDone
	if prevCommit > commitDone {
		commitDone = prevCommit
	}
	commitDone += int64(cfg.CommitOverhead)
	// Injection point: a delayed block commit.
	if m.Inject != nil {
		if d := m.Inject.CommitDelay(site); d > 0 {
			commitDone += d
			m.Stats.Faults.CommitDelays++
			m.Stats.Faults.ExtraCycles += d
		}
	}
	// Progress watchdog: a commit landing WatchdogGap cycles after its
	// predecessor, or past the cycle budget, aborts with a structured
	// report instead of letting a livelocked model spin.
	if watchGap > 0 && commitDone-prevCommit > watchGap {
		return res, m.stuck(fmt.Sprintf("no commit for %d cycles (bound %d)", commitDone-prevCommit, watchGap),
			f, b, site.Seq, prevCommit, commitDone)
	}
	if cycleBudget > 0 && commitDone > cycleBudget {
		return res, m.stuck(fmt.Sprintf("cycle budget %d exceeded", cycleBudget),
			f, b, site.Seq, prevCommit, commitDone)
	}
	m.lastCommitDone = commitDone
	m.inflight = append(m.inflight, inflightBlock{commit: commitDone, fn: f.Name, block: b.Name})
	// Trim the history to the window the fetch throttle (and the
	// watchdog report) can still reference. The tail is shifted down in
	// place, so after the slice's one-time growth to keep+64 entries
	// the trim allocates nothing.
	keep := cfg.MaxInflight
	if keep <= 0 {
		keep = 64
	}
	if len(m.inflight) > keep+64 {
		n := copy(m.inflight, m.inflight[len(m.inflight)-keep:])
		m.inflight = m.inflight[:n]
	}

	if m.TraceBlock == f.Name+"."+b.Name && m.traced < 8 {
		m.traced++
		fmt.Printf("trace %s: fetch=%d readyBase=%d blockDone=%d span=%d commit=%d exec=%d\n",
			m.TraceBlock, fetchStart, readyBase, blockDone, blockDone-readyBase, commitDone, issueSlots)
	}

	// Next-block prediction (returns and calls are handled by
	// RAS/direct-target hardware and treated as predicted).
	if exitOutcome != retOutcome {
		correct := true
		if !fm.isSingleExit(b) {
			correct = m.pred.observeHashed(fm.hash, b.ID, exitOutcome)
		}
		// Injection point: force a flush as if the prediction had been
		// wrong. The predictor's tables still trained on the actual
		// outcome above, so only timing is perturbed.
		if m.Inject != nil && m.Inject.ForceMispredict(site) {
			correct = false
			m.Stats.Faults.ForcedMispredicts++
		}
		if !correct {
			m.nextFetchMin = exitResolve + int64(cfg.MispredictPenalty)
			m.Stats.Flushes++
		}
	}
	return res, nil
}

func (m *Machine) operand(fr *frame, r ir.Reg) int64 {
	if !r.Valid() {
		return 0
	}
	return fr.val[r]
}

// cacheAccess returns the extra latency of a data access and updates
// the cache state.
func (m *Machine) cacheAccess(addr int64) int64 {
	if m.cache == nil {
		return 0
	}
	m.Stats.CacheAccesses++
	line := addr / int64(m.Cfg.CacheLineWords)
	if line < 0 {
		line = -line
	}
	idx := line % int64(len(m.cache))
	if m.cache[idx] == line {
		return 0
	}
	m.cache[idx] = line
	m.Stats.CacheMisses++
	return int64(m.Cfg.CacheMissLat)
}

// RunProgram is a convenience wrapper: simulate fn on a fresh machine
// with the default configuration.
func RunProgram(prog *ir.Program, fn string, args ...int64) (int64, Stats, error) {
	m := New(prog, DefaultConfig())
	v, err := m.Run(fn, args...)
	return v, m.Stats, err
}
