package timing

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/ir"
)

// Site identifies one dynamic fault-injection site: a block execution,
// named by its function, block, and the machine-wide block sequence
// number (Stats.Blocks at fetch time). The same Site is presented to
// the injector for every query about that block execution, so a
// deterministic injector can key its decisions on it.
type Site struct {
	Fn    string
	Block string
	Seq   int64
}

// Injector is the timing model's fault-injection interface. The
// machine consults it (when Machine.Inject is non-nil) at four
// injection points; every fault perturbs timing only — injected
// latencies and forced flushes can change cycle counts but can never
// reach architectural state (values, output, memory), which is the
// invariant internal/chaos verifies.
//
// Implementations must be deterministic functions of their arguments
// (and any seed fixed at construction): the same program under the
// same injector must produce the same cycle count. They must also be
// safe for concurrent use by independent machines.
type Injector interface {
	// FetchStall returns extra cycles to add before the block's fetch
	// starts (a transient fetch/map stall).
	FetchStall(s Site) int64
	// HopJitter returns extra operand-network hop latency for the
	// instruction at index instr in the block (added on top of
	// Config.RoutingLat when the result is routed to consumers).
	HopJitter(s Site, instr int) int64
	// CommitDelay returns extra cycles to add to the block's commit.
	CommitDelay(s Site) int64
	// ForceMispredict reports whether the block's exit prediction
	// should be treated as wrong regardless of the predictor's answer,
	// forcing a flush. The predictor's tables still train normally.
	ForceMispredict(s Site) bool
}

// FaultCounts tallies the faults an injector actually landed during a
// run, by injection point, plus the total latency injected.
type FaultCounts struct {
	FetchStalls       int64 `json:"fetch_stalls,omitempty"`
	HopJitters        int64 `json:"hop_jitters,omitempty"`
	CommitDelays      int64 `json:"commit_delays,omitempty"`
	ForcedMispredicts int64 `json:"forced_mispredicts,omitempty"`
	// ExtraCycles sums the injected latencies (not the forced-flush
	// penalties, which are charged at the model's MispredictPenalty).
	ExtraCycles int64 `json:"extra_cycles,omitempty"`
}

// Total returns the number of faults injected across all sites.
func (f FaultCounts) Total() int64 {
	return f.FetchStalls + f.HopJitters + f.CommitDelays + f.ForcedMispredicts
}

// ErrWatchdog reports that the simulator's progress watchdog aborted
// the run: either no instruction committed for Config.WatchdogGap
// cycles, or the run exceeded Config.MaxCycles. The returned error is
// a *StuckError carrying the full StuckReport; test with
// errors.Is(err, ErrWatchdog) and unpack with errors.As.
var ErrWatchdog = errors.New("timing: watchdog tripped")

// StuckError wraps a StuckReport as an error.
type StuckError struct {
	Report StuckReport
}

func (e *StuckError) Error() string {
	return "timing: watchdog: " + e.Report.String()
}

// Unwrap makes errors.Is(err, ErrWatchdog) true.
func (e *StuckError) Unwrap() error { return ErrWatchdog }

// StuckReport is the watchdog's structured diagnostic: where the
// machine was when progress stopped, which blocks were in flight, and
// which instructions had not completed — with the operand each one
// was waiting on — instead of a silent hang.
type StuckReport struct {
	// Reason says which bound tripped ("no commit for N cycles" or
	// "cycle budget exceeded").
	Reason string `json:"reason"`
	// Fn/Block/BlockSeq name the block execution that tripped the
	// watchdog.
	Fn       string `json:"fn"`
	Block    string `json:"block"`
	BlockSeq int64  `json:"block_seq"`
	// PrevCommit is the cycle of the last successful commit; Cycle is
	// the commit cycle the stuck block would have reached.
	PrevCommit int64 `json:"prev_commit"`
	Cycle      int64 `json:"cycle"`
	// InFlight lists the most recent blocks in the speculation window
	// with their commit cycles (newest last, the stuck block
	// excluded).
	InFlight []InFlightBlock `json:"in_flight,omitempty"`
	// Stalled lists the stuck block's instructions that had not
	// completed by PrevCommit, newest-completion first (capped).
	Stalled []StalledInstr `json:"stalled,omitempty"`
}

// InFlightBlock is one block in the speculation window.
type InFlightBlock struct {
	Fn     string `json:"fn"`
	Block  string `json:"block"`
	Commit int64  `json:"commit"`
}

// StalledInstr is one instruction that had not completed when the
// watchdog fired, with the operand that dominated its readiness.
type StalledInstr struct {
	// Index is the instruction's position in the block; Op its opcode
	// and Dst its destination register ("-" if none).
	Index int    `json:"index"`
	Op    string `json:"op"`
	Dst   string `json:"dst"`
	// WaitsOn is the operand register whose readiness time dominated
	// the instruction's issue ("-" when it was ready at fetch and only
	// waiting on issue bandwidth or execution latency).
	WaitsOn string `json:"waits_on"`
	// ReadyAt is when the instruction's operands were ready;
	// CompleteAt when its result was produced.
	ReadyAt    int64 `json:"ready_at"`
	CompleteAt int64 `json:"complete_at"`
}

// String renders the report on one line (the multi-line detail is in
// Format).
func (r StuckReport) String() string {
	return fmt.Sprintf("%s at %s.%s (block #%d): last commit %d, stuck commit %d, %d in flight, %d stalled",
		r.Reason, r.Fn, r.Block, r.BlockSeq, r.PrevCommit, r.Cycle, len(r.InFlight), len(r.Stalled))
}

// Format renders the full multi-line diagnostic.
func (r StuckReport) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "watchdog: %s\n", r.String())
	for _, b := range r.InFlight {
		fmt.Fprintf(&sb, "  in flight: %s.%s commit=%d\n", b.Fn, b.Block, b.Commit)
	}
	for _, in := range r.Stalled {
		fmt.Fprintf(&sb, "  stalled: #%d %s dst=%s waits on %s ready=%d complete=%d\n",
			in.Index, in.Op, in.Dst, in.WaitsOn, in.ReadyAt, in.CompleteAt)
	}
	return sb.String()
}

// maxStalledReported caps the Stalled list so a pathological block
// cannot bloat the report.
const maxStalledReported = 8

// stuck builds the watchdog error for the current block execution.
func (m *Machine) stuck(reason string, f *ir.Function, b *ir.Block, seq, prevCommit, cycle int64) error {
	rep := StuckReport{
		Reason:     reason,
		Fn:         f.Name,
		Block:      b.Name,
		BlockSeq:   seq,
		PrevCommit: prevCommit,
		Cycle:      cycle,
	}
	window := m.Cfg.MaxInflight
	if window <= 0 || window > len(m.inflight) {
		window = len(m.inflight)
	}
	for _, fl := range m.inflight[len(m.inflight)-window:] {
		rep.InFlight = append(rep.InFlight, InFlightBlock{Fn: fl.fn, Block: fl.block, Commit: fl.commit})
	}
	// Report the instructions that had not completed at the last
	// commit, slowest first: these are the ones the commit is waiting
	// on, and rec.waits names the operand that held each one up.
	for i := len(m.recs) - 1; i >= 0 && len(rep.Stalled) < maxStalledReported; i-- {
		rec := m.recs[i]
		if rec.complete <= prevCommit {
			continue
		}
		rep.Stalled = append(rep.Stalled, StalledInstr{
			Index:      rec.index,
			Op:         rec.op.String(),
			Dst:        rec.dst.String(),
			WaitsOn:    rec.waits.String(),
			ReadyAt:    rec.ready,
			CompleteAt: rec.complete,
		})
	}
	return &StuckError{Report: rep}
}
