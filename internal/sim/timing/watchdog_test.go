package timing

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/ir"
)

// commitDelayAt is a hand-built fault: one enormous commit delay at a
// single block execution, every other site clean.
type commitDelayAt struct {
	seq   int64
	delay int64
}

func (c commitDelayAt) FetchStall(Site) int64     { return 0 }
func (c commitDelayAt) HopJitter(Site, int) int64 { return 0 }
func (c commitDelayAt) ForceMispredict(Site) bool { return false }
func (c commitDelayAt) CommitDelay(s Site) int64 {
	if s.Seq == c.seq {
		return c.delay
	}
	return 0
}

// TestWatchdogFiresWithStuckReport is the issue's acceptance test: a
// hand-built commit-delay fault makes the watchdog fire, and the
// StuckReport names the stuck instruction and the operand it waits on.
func TestWatchdogFiresWithStuckReport(t *testing.T) {
	// Straight-line dependence chain in the entry block: each result
	// feeds the next, so the report's stalled instructions have a
	// concrete operand to blame.
	prog := compile(t, `
func main(n) {
  var a = n * 3;
  var b = a * a;
  var c = b + n;
  return c;
}`)
	m := New(prog, DefaultConfig())
	m.Inject = commitDelayAt{seq: 0, delay: DefaultWatchdogGap + 5}
	_, err := m.Run("main", 7)
	if !errors.Is(err, ErrWatchdog) {
		t.Fatalf("err = %v, want ErrWatchdog", err)
	}
	var se *StuckError
	if !errors.As(err, &se) {
		t.Fatalf("err %T does not unwrap to *StuckError", err)
	}
	rep := se.Report
	if rep.Fn != "main" || rep.Block == "" {
		t.Errorf("report does not name the stuck block: %+v", rep)
	}
	if !strings.Contains(rep.Reason, "no commit for") {
		t.Errorf("reason = %q, want a commit-gap reason", rep.Reason)
	}
	if len(rep.Stalled) == 0 {
		t.Fatal("report lists no stalled instructions")
	}
	// At least one stalled instruction must name the operand register
	// it was waiting on (the dependence chain guarantees one exists).
	named := false
	for _, in := range rep.Stalled {
		if in.WaitsOn != "-" {
			named = true
			if !strings.HasPrefix(in.WaitsOn, "v") {
				t.Errorf("WaitsOn = %q, want a register name", in.WaitsOn)
			}
			if in.CompleteAt <= rep.PrevCommit {
				t.Errorf("stalled instruction completed before the last commit: %+v", in)
			}
		}
	}
	if !named {
		t.Errorf("no stalled instruction names its missing operand:\n%s", rep.Format())
	}
	// The one-line and multi-line renderings both carry the location.
	if !strings.Contains(rep.String(), "main.") || !strings.Contains(rep.Format(), "stalled:") {
		t.Errorf("report renderings incomplete:\n%s\n%s", rep.String(), rep.Format())
	}
	// Counters survive the abort (the partial run stays observable).
	if m.Stats.Blocks == 0 {
		t.Error("stats not recorded on watchdog abort")
	}
	if m.Stats.Faults.CommitDelays != 1 {
		t.Errorf("CommitDelays = %d, want 1", m.Stats.Faults.CommitDelays)
	}
}

// TestWatchdogReportsInFlightBlocks delays a mid-loop commit so the
// report's in-flight window is populated.
func TestWatchdogReportsInFlightBlocks(t *testing.T) {
	prog := compile(t, loopSrc)
	m := New(prog, DefaultConfig())
	m.Inject = commitDelayAt{seq: 6, delay: DefaultWatchdogGap + 1}
	_, err := m.Run("main", 50)
	var se *StuckError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *StuckError", err)
	}
	rep := se.Report
	if rep.BlockSeq != 6 {
		t.Errorf("BlockSeq = %d, want 6", rep.BlockSeq)
	}
	if len(rep.InFlight) == 0 {
		t.Errorf("no in-flight blocks reported:\n%s", rep.Format())
	}
	for _, b := range rep.InFlight {
		if b.Fn == "" || b.Block == "" {
			t.Errorf("anonymous in-flight block: %+v", b)
		}
	}
}

// TestWatchdogDisabled: a negative gap turns the watchdog off, so the
// same fault only slows the run down.
func TestWatchdogDisabled(t *testing.T) {
	prog := compile(t, loopSrc)
	cfg := DefaultConfig()
	cfg.WatchdogGap = -1
	m := New(prog, cfg)
	m.Inject = commitDelayAt{seq: 0, delay: DefaultWatchdogGap + 5}
	v, err := m.Run("main", 10)
	if err != nil {
		t.Fatalf("disabled watchdog still aborted: %v", err)
	}
	if v != 45 {
		t.Errorf("result = %d, want 45", v)
	}
	if m.Stats.Cycles <= DefaultWatchdogGap {
		t.Errorf("cycles = %d, expected the injected delay to land", m.Stats.Cycles)
	}
}

// TestMaxCyclesBudget: the cycle budget bounds a structurally slow run
// with the budget-exceeded reason.
func TestMaxCyclesBudget(t *testing.T) {
	prog := compile(t, loopSrc)
	cfg := DefaultConfig()
	cfg.MaxCycles = 200
	m := New(prog, cfg)
	_, err := m.Run("main", 1_000_000)
	if !errors.Is(err, ErrWatchdog) {
		t.Fatalf("err = %v, want ErrWatchdog", err)
	}
	var se *StuckError
	if !errors.As(err, &se) {
		t.Fatal("budget error is not a *StuckError")
	}
	if !strings.Contains(se.Report.Reason, "cycle budget") {
		t.Errorf("reason = %q, want a cycle-budget reason", se.Report.Reason)
	}
}

// TestRunContextCancellation: a cancelled context aborts the run
// cooperatively between blocks.
func TestRunContextCancellation(t *testing.T) {
	prog := compile(t, loopSrc)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m := New(prog, DefaultConfig())
	_, err := m.RunContext(ctx, "main", 1000)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The machine is reusable afterwards with a live context.
	m2 := New(ir.CloneProgram(m.Prog), DefaultConfig())
	if v, err := m2.RunContext(context.Background(), "main", 10); err != nil || v != 45 {
		t.Fatalf("fresh run after cancellation: v=%d err=%v", v, err)
	}
}
