package functional

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/ir"
)

// buildAbs constructs: f(a) = |a| as two basic blocks plus a join.
func buildAbs() *ir.Program {
	p := ir.NewProgram()
	f := ir.NewFunction("abs", 1)
	entry := f.NewBlock("entry")
	neg := f.NewBlock("neg")
	done := f.NewBlock("done")
	bd := ir.NewBuilder(f, entry)
	z := bd.Const(0)
	c := bd.Bin(ir.OpCmpLT, f.Params[0], z)
	r := f.NewReg()
	bd.MovInto(r, f.Params[0])
	bd.CondBr(c, neg, done)
	bd.SetBlock(neg)
	bd.Cur.Append(&ir.Instr{Op: ir.OpNeg, Dst: r, A: f.Params[0], B: ir.NoReg, Pred: ir.NoReg})
	bd.Br(done)
	bd.SetBlock(done)
	bd.Ret(r)
	p.AddFunc(f)
	return p
}

func TestRunBasic(t *testing.T) {
	p := buildAbs()
	for _, tc := range []struct{ in, want int64 }{{5, 5}, {-5, 5}, {0, 0}} {
		v, _, _, err := RunProgram(p, "abs", tc.in)
		if err != nil {
			t.Fatal(err)
		}
		if v != tc.want {
			t.Errorf("abs(%d) = %d", tc.in, v)
		}
	}
}

func TestStats(t *testing.T) {
	p := buildAbs()
	m := New(p)
	if _, err := m.Run("abs", -3); err != nil {
		t.Fatal(err)
	}
	if m.Stats.Blocks != 3 {
		t.Errorf("Blocks = %d, want 3", m.Stats.Blocks)
	}
	if m.Stats.Branches != 3 { // condbr + br + ret
		t.Errorf("Branches = %d, want 3", m.Stats.Branches)
	}
	if m.Stats.Calls != 1 {
		t.Errorf("Calls = %d", m.Stats.Calls)
	}
	if m.Stats.Executed >= m.Stats.Fetched {
		t.Errorf("some instructions (untaken branch) must not execute: exec=%d fetch=%d",
			m.Stats.Executed, m.Stats.Fetched)
	}
}

// TestHyperblockSemantics builds a single predicated block equivalent
// to abs: both arms predicated on the comparison, one exit each.
func TestHyperblockSemantics(t *testing.T) {
	p := ir.NewProgram()
	f := ir.NewFunction("abs", 1)
	hb := f.NewBlock("hb")
	exitB := f.NewBlock("exit")
	bd := ir.NewBuilder(f, hb)
	z := bd.Const(0)
	c := bd.Bin(ir.OpCmpLT, f.Params[0], z)
	r := f.NewReg()
	// r = a (pred false), r = -a (pred true)
	hb.Append(&ir.Instr{Op: ir.OpMov, Dst: r, A: f.Params[0], B: ir.NoReg, Pred: c, PredSense: false})
	hb.Append(&ir.Instr{Op: ir.OpNeg, Dst: r, A: f.Params[0], B: ir.NoReg, Pred: c, PredSense: true})
	bd.Br(exitB)
	bd.SetBlock(exitB)
	bd.Ret(r)
	p.AddFunc(f)
	for _, tc := range []struct{ in, want int64 }{{7, 7}, {-7, 7}} {
		v, _, _, err := RunProgram(p, "abs", tc.in)
		if err != nil {
			t.Fatal(err)
		}
		if v != tc.want {
			t.Errorf("abs(%d) = %d", tc.in, v)
		}
	}
}

func TestMultipleExitsDetected(t *testing.T) {
	p := ir.NewProgram()
	f := ir.NewFunction("bad", 0)
	b := f.NewBlock("entry")
	e := f.NewBlock("e")
	bd := ir.NewBuilder(f, b)
	one := bd.Const(1)
	// Two branches both predicated true on the same condition.
	b.Append(&ir.Instr{Op: ir.OpBr, Dst: ir.NoReg, A: ir.NoReg, B: ir.NoReg, Pred: one, PredSense: true, Target: e})
	b.Append(&ir.Instr{Op: ir.OpBr, Dst: ir.NoReg, A: ir.NoReg, B: ir.NoReg, Pred: one, PredSense: true, Target: e})
	bd.SetBlock(e)
	bd.Ret(ir.NoReg)
	p.AddFunc(f)
	_, _, _, err := RunProgram(p, "bad")
	if err == nil || !strings.Contains(err.Error(), "multiple exits") {
		t.Fatalf("want multiple-exit error, got %v", err)
	}
}

func TestNoExitDetected(t *testing.T) {
	p := ir.NewProgram()
	f := ir.NewFunction("bad", 0)
	b := f.NewBlock("entry")
	e := f.NewBlock("e")
	bd := ir.NewBuilder(f, b)
	z := bd.Const(0)
	// Branch predicated on a false condition: no exit fires.
	b.Append(&ir.Instr{Op: ir.OpBr, Dst: ir.NoReg, A: ir.NoReg, B: ir.NoReg, Pred: z, PredSense: true, Target: e})
	bd.SetBlock(e)
	bd.Ret(ir.NoReg)
	p.AddFunc(f)
	_, _, _, err := RunProgram(p, "bad")
	if err == nil || !strings.Contains(err.Error(), "no exit") {
		t.Fatalf("want no-exit error, got %v", err)
	}
}

func TestMemoryBounds(t *testing.T) {
	p := ir.NewProgram()
	p.AddGlobal("a", 4)
	p.InitData[3] = 42
	f := ir.NewFunction("f", 1)
	b := f.NewBlock("entry")
	bd := ir.NewBuilder(f, b)
	v := bd.Load(f.Params[0], 0)
	bd.Ret(v)
	p.AddFunc(f)
	// Speculative-load semantics: out-of-range reads return zero.
	if got, _, _, err := RunProgram(p, "f", 100); err != nil || got != 0 {
		t.Fatalf("OOB load: got %d, %v (want 0, nil)", got, err)
	}
	if got, _, _, err := RunProgram(p, "f", -1); err != nil || got != 0 {
		t.Fatalf("negative load: got %d, %v (want 0, nil)", got, err)
	}
	if got, _, _, err := RunProgram(p, "f", 3); err != nil || got != 42 {
		t.Fatalf("in-bounds load: got %d, %v", got, err)
	}
	// Stores remain bounds-checked (they are never speculative).
	g := ir.NewFunction("g", 1)
	gb := g.NewBlock("entry")
	gbd := ir.NewBuilder(g, gb)
	gbd.Store(g.Params[0], 0, g.Params[0])
	gbd.Ret(ir.NoReg)
	p.AddFunc(g)
	if _, _, _, err := RunProgram(p, "g", 100); err == nil {
		t.Fatal("out-of-bounds store must fail")
	}
}

func TestStoreLoadForwardingWithinBlock(t *testing.T) {
	p := ir.NewProgram()
	p.AddGlobal("a", 1)
	f := ir.NewFunction("f", 1)
	b := f.NewBlock("entry")
	bd := ir.NewBuilder(f, b)
	z := bd.Const(0)
	bd.Store(z, 0, f.Params[0])
	v := bd.Load(z, 0)
	bd.Ret(v)
	p.AddFunc(f)
	got, _, _, err := RunProgram(p, "f", 42)
	if err != nil || got != 42 {
		t.Fatalf("forwarding: got %d, %v", got, err)
	}
}

func TestFuelExhaustion(t *testing.T) {
	p := ir.NewProgram()
	f := ir.NewFunction("spin", 0)
	b := f.NewBlock("entry")
	ir.NewBuilder(f, b).Br(b)
	p.AddFunc(f)
	m := New(p)
	m.MaxSteps = 1000
	_, err := m.Run("spin")
	if !errors.Is(err, ErrFuel) {
		t.Fatalf("want ErrFuel, got %v", err)
	}
	// The budget error is structured: it names where execution was when
	// the fuel ran out.
	var se *StuckError
	if !errors.As(err, &se) {
		t.Fatalf("want *StuckError, got %T", err)
	}
	if se.Fn != "spin" || se.Block != "entry" || se.Steps != 1000 {
		t.Fatalf("stuck report = %+v", se)
	}
}

func TestCallDepthLimit(t *testing.T) {
	p := ir.NewProgram()
	f := ir.NewFunction("r", 0)
	b := f.NewBlock("entry")
	bd := ir.NewBuilder(f, b)
	v := bd.Call("r")
	bd.Ret(v)
	p.AddFunc(f)
	m := New(p)
	m.MaxDepth = 50
	if _, err := m.Run("r"); err == nil || !strings.Contains(err.Error(), "depth") {
		t.Fatalf("want depth error, got %v", err)
	}
}

func TestResetRestoresState(t *testing.T) {
	p := ir.NewProgram()
	p.AddGlobal("a", 2)
	p.InitData[0] = 9
	p.Externs["print"] = true
	f := ir.NewFunction("f", 0)
	b := f.NewBlock("entry")
	bd := ir.NewBuilder(f, b)
	z := bd.Const(0)
	v := bd.Load(z, 0)
	bd.CallVoid("print", v)
	one := bd.Const(1)
	bd.Store(z, 0, one)
	bd.Ret(v)
	p.AddFunc(f)
	m := New(p)
	if _, err := m.Run("f"); err != nil {
		t.Fatal(err)
	}
	if m.Mem[0] != 1 || len(m.Output) != 1 || m.Output[0] != 9 {
		t.Fatalf("first run state wrong: mem=%v out=%v", m.Mem, m.Output)
	}
	m.Reset()
	if m.Mem[0] != 9 || len(m.Output) != 0 || m.Stats.Blocks != 0 {
		t.Fatal("Reset did not restore state")
	}
	if _, err := m.Run("f"); err != nil {
		t.Fatal(err)
	}
	if m.Output[0] != 9 {
		t.Fatal("second run saw stale memory")
	}
}

func TestHooks(t *testing.T) {
	p := buildAbs()
	m := New(p)
	var blocks, edges int
	m.Hooks.OnBlock = func(f *ir.Function, b *ir.Block) { blocks++ }
	m.Hooks.OnEdge = func(f *ir.Function, from, to *ir.Block) { edges++ }
	if _, err := m.Run("abs", -1); err != nil {
		t.Fatal(err)
	}
	if blocks != 3 || edges != 2 {
		t.Fatalf("hooks: blocks=%d edges=%d", blocks, edges)
	}
}

func TestUnknownFunction(t *testing.T) {
	p := ir.NewProgram()
	if _, _, _, err := RunProgram(p, "nope"); err == nil {
		t.Fatal("unknown function must fail")
	}
}

func TestArgCountMismatch(t *testing.T) {
	p := buildAbs()
	if _, _, _, err := RunProgram(p, "abs"); err == nil {
		t.Fatal("arg mismatch must fail")
	}
}

func TestNullWIsNoop(t *testing.T) {
	p := ir.NewProgram()
	f := ir.NewFunction("f", 1)
	b := f.NewBlock("entry")
	bd := ir.NewBuilder(f, b)
	b.Append(&ir.Instr{Op: ir.OpNullW, Dst: f.Params[0], A: ir.NoReg, B: ir.NoReg, Pred: ir.NoReg})
	bd.Ret(f.Params[0])
	p.AddFunc(f)
	got, _, _, err := RunProgram(p, "f", 77)
	if err != nil || got != 77 {
		t.Fatalf("nullw: %d, %v", got, err)
	}
}
