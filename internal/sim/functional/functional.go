// Package functional implements the architectural (functional)
// simulator: it executes IR programs directly, producing the
// program's observable output and architecture-independent event
// counts (blocks executed, instructions executed, branches, memory
// operations). It stands in for the TRIPS functional simulator
// (tsim-arch) the paper uses to gather block counts and profiles.
//
// Execution semantics follow the EDGE block-atomic model expressed
// sequentially: every instruction of a block is visited in order; an
// instruction executes iff it is unpredicated or its predicate
// register's truth value matches its sense; exactly one exit (branch
// or return) may fire per block execution. Loads observe earlier
// stores of the same block (LSQ store-load forwarding).
package functional

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/ir"
)

// Stats aggregates dynamic execution counts.
type Stats struct {
	// Blocks is the number of block executions (the paper's "blocks
	// executed" metric).
	Blocks int64
	// Fetched counts instructions occupying slots in executed blocks
	// (total block sizes).
	Fetched int64
	// Executed counts instructions whose predicate was satisfied.
	Executed int64
	// Branches counts fired block exits; MispredictableBranches
	// counts executed blocks with more than one static exit.
	Branches int64
	// Loads and Stores count executed memory operations.
	Loads  int64
	Stores int64
	// Calls counts function invocations.
	Calls int64
}

// Hooks are optional instrumentation callbacks.
type Hooks struct {
	// OnBlock fires before a block executes.
	OnBlock func(f *ir.Function, b *ir.Block)
	// OnEdge fires when control transfers from one block to another
	// within a function (not across calls/returns).
	OnEdge func(f *ir.Function, from, to *ir.Block)
}

// Machine executes a program.
type Machine struct {
	Prog *ir.Program
	// Mem is the global memory image (word-addressed int64).
	Mem []int64
	// Output is the print stream — the program's observable output,
	// used as the semantic-preservation oracle.
	Output []int64
	// Stats accumulates dynamic counts.
	Stats Stats
	// Hooks holds optional instrumentation.
	Hooks Hooks
	// MaxSteps bounds executed instructions (0 = default 500M); Run
	// fails with ErrFuel when exceeded.
	MaxSteps int64
	// MaxDepth bounds call nesting (0 = default 512).
	MaxDepth int

	// ctx, when non-nil, is polled between blocks so a canceled run
	// returns instead of executing on (see RunContext).
	ctx context.Context

	steps int64
	depth int
}

// ErrFuel reports that execution exceeded MaxSteps.
var ErrFuel = errors.New("functional: instruction budget exhausted")

// StuckError is the structured form of a step-budget exhaustion: it
// names the block the machine was executing when the budget ran out,
// so a livelocked program aborts with a diagnostic instead of a bare
// sentinel. errors.Is(err, ErrFuel) remains true.
type StuckError struct {
	// Fn and Block name the executing block; Steps is the budget that
	// was exhausted.
	Fn    string
	Block string
	Steps int64
}

func (e *StuckError) Error() string {
	return fmt.Sprintf("functional: %s.%s: instruction budget exhausted after %d steps", e.Fn, e.Block, e.Steps)
}

// Unwrap makes errors.Is(err, ErrFuel) true.
func (e *StuckError) Unwrap() error { return ErrFuel }

// New creates a machine with the program's initial memory image.
func New(prog *ir.Program) *Machine {
	m := &Machine{Prog: prog}
	m.Mem = make([]int64, prog.MemSize)
	for addr, v := range prog.InitData {
		m.Mem[addr] = v
	}
	return m
}

// Reset restores initial memory, clears output and statistics.
func (m *Machine) Reset() {
	for i := range m.Mem {
		m.Mem[i] = 0
	}
	for addr, v := range m.Prog.InitData {
		m.Mem[addr] = v
	}
	m.Output = nil
	m.Stats = Stats{}
	m.steps = 0
	m.depth = 0
}

// RunContext is Run with cooperative cancellation: the machine polls
// ctx between block executions and aborts with ctx's error once it is
// done, so a driver's deadline (or a serving layer's request
// cancellation) stops the execution instead of abandoning it
// mid-flight. The returned error wraps ctx.Err(), so callers can
// classify it with errors.Is(err, context.DeadlineExceeded) or
// errors.Is(err, context.Canceled).
func (m *Machine) RunContext(ctx context.Context, fn string, args ...int64) (int64, error) {
	m.ctx = ctx
	defer func() { m.ctx = nil }()
	return m.Run(fn, args...)
}

// Run executes the named function with the given arguments and
// returns its result.
func (m *Machine) Run(fn string, args ...int64) (int64, error) {
	f := m.Prog.Func(fn)
	if f == nil {
		return 0, fmt.Errorf("functional: no function %q", fn)
	}
	if len(args) != len(f.Params) {
		return 0, fmt.Errorf("functional: %s takes %d args, got %d", fn, len(f.Params), len(args))
	}
	return m.call(f, args)
}

func (m *Machine) call(f *ir.Function, args []int64) (int64, error) {
	maxDepth := m.MaxDepth
	if maxDepth == 0 {
		maxDepth = 512
	}
	if m.depth >= maxDepth {
		return 0, fmt.Errorf("functional: call depth exceeds %d", maxDepth)
	}
	m.depth++
	defer func() { m.depth-- }()
	m.Stats.Calls++

	regs := make([]int64, f.NumRegs())
	for i, p := range f.Params {
		regs[p] = args[i]
	}
	b := f.Entry()
	for {
		next, ret, retVal, err := m.execBlock(f, b, regs)
		if err != nil {
			return 0, err
		}
		if ret {
			return retVal, nil
		}
		if m.Hooks.OnEdge != nil {
			m.Hooks.OnEdge(f, b, next)
		}
		b = next
	}
}

// execBlock runs one block to completion. It returns the successor
// block, or ret=true with the return value.
func (m *Machine) execBlock(f *ir.Function, b *ir.Block, regs []int64) (next *ir.Block, ret bool, retVal int64, err error) {
	// Cooperative cancellation: one cheap poll per block execution
	// (free for plain Run, where m.ctx is nil).
	if m.ctx != nil {
		select {
		case <-m.ctx.Done():
			return nil, false, 0, fmt.Errorf("functional: %s.%s: %w", f.Name, b.Name, m.ctx.Err())
		default:
		}
	}
	if m.Hooks.OnBlock != nil {
		m.Hooks.OnBlock(f, b)
	}
	m.Stats.Blocks++
	m.Stats.Fetched += int64(len(b.Instrs))
	maxSteps := m.MaxSteps
	if maxSteps == 0 {
		maxSteps = 500_000_000
	}

	exits := 0
	for _, in := range b.Instrs {
		if m.steps >= maxSteps {
			return nil, false, 0, &StuckError{Fn: f.Name, Block: b.Name, Steps: maxSteps}
		}
		m.steps++
		if in.Predicated() {
			truth := regs[in.Pred] != 0
			if truth != in.PredSense {
				continue
			}
		}
		m.Stats.Executed++
		switch in.Op {
		case ir.OpLoad:
			addr := regs[in.A] + in.Imm
			v, _ := m.load(addr)
			regs[in.Dst] = v
			m.Stats.Loads++
		case ir.OpStore:
			addr := regs[in.A] + in.Imm
			if err := m.store(addr, regs[in.B]); err != nil {
				return nil, false, 0, fmt.Errorf("%s.%s: %w", f.Name, b.Name, err)
			}
			m.Stats.Stores++
		case ir.OpBr:
			exits++
			if exits > 1 {
				return nil, false, 0, fmt.Errorf("functional: %s.%s fired multiple exits", f.Name, b.Name)
			}
			next = in.Target
			m.Stats.Branches++
		case ir.OpRet:
			exits++
			if exits > 1 {
				return nil, false, 0, fmt.Errorf("functional: %s.%s fired multiple exits", f.Name, b.Name)
			}
			ret = true
			if in.A.Valid() {
				retVal = regs[in.A]
			}
			m.Stats.Branches++
		case ir.OpCall:
			if in.Callee == "print" && m.Prog.Externs["print"] {
				m.Output = append(m.Output, regs[in.Args[0]])
				break
			}
			callee := m.Prog.Func(in.Callee)
			if callee == nil {
				return nil, false, 0, fmt.Errorf("functional: call to unknown %q", in.Callee)
			}
			cargs := make([]int64, len(in.Args))
			for i, a := range in.Args {
				cargs[i] = regs[a]
			}
			v, err := m.call(callee, cargs)
			if err != nil {
				return nil, false, 0, err
			}
			if in.Dst.Valid() {
				regs[in.Dst] = v
			}
		case ir.OpNullW:
			// Output normalization: semantically a no-op.
		default:
			var a, bv int64
			if in.A.Valid() {
				a = regs[in.A]
			}
			if in.B.Valid() {
				bv = regs[in.B]
			}
			v, ok := EvalPure(in.Op, a, bv, in.Imm)
			if !ok {
				return nil, false, 0, fmt.Errorf("functional: cannot execute %s", in.Op)
			}
			regs[in.Dst] = v
		}
	}
	if exits == 0 {
		return nil, false, 0, fmt.Errorf("functional: %s.%s produced no exit", f.Name, b.Name)
	}
	return next, ret, retVal, nil
}

// load implements speculative-load semantics: an address outside the
// memory image reads as zero instead of faulting. Hyperblock
// formation speculates loads from merged code, and a wrong-path
// (predicate-false) load may compute a junk address; its value can
// only reach architectural state through a commit gated on the
// predicate, so the zero is never observable by a correct program.
func (m *Machine) load(addr int64) (int64, error) {
	if addr < 0 || addr >= int64(len(m.Mem)) {
		return 0, nil
	}
	return m.Mem[addr], nil
}

func (m *Machine) store(addr, v int64) error {
	if addr < 0 || addr >= int64(len(m.Mem)) {
		return fmt.Errorf("store out of bounds: %d (mem %d)", addr, len(m.Mem))
	}
	m.Mem[addr] = v
	return nil
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// RunProgram is a convenience helper: build a machine, run fn, and
// return (result, output, stats).
func RunProgram(prog *ir.Program, fn string, args ...int64) (int64, []int64, Stats, error) {
	m := New(prog)
	v, err := m.Run(fn, args...)
	return v, m.Output, m.Stats, err
}
