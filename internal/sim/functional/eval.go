package functional

import "repro/internal/ir"

// EvalPure computes the result of a pure (register-only) instruction
// given its operand values and immediate. It returns ok=false for
// opcodes with memory or control effects. Both simulators share this
// evaluator so their value semantics cannot diverge.
func EvalPure(op ir.Op, a, b, imm int64) (int64, bool) {
	switch op {
	case ir.OpConst:
		return imm, true
	case ir.OpMov:
		return a, true
	case ir.OpAdd:
		return a + b, true
	case ir.OpSub:
		return a - b, true
	case ir.OpMul:
		return a * b, true
	case ir.OpDiv:
		if b == 0 {
			return 0, true
		}
		return a / b, true
	case ir.OpRem:
		if b == 0 {
			return 0, true
		}
		return a % b, true
	case ir.OpAnd:
		return a & b, true
	case ir.OpOr:
		return a | b, true
	case ir.OpXor:
		return a ^ b, true
	case ir.OpShl:
		return a << (uint64(b) & 63), true
	case ir.OpShr:
		return a >> (uint64(b) & 63), true
	case ir.OpNeg:
		return -a, true
	case ir.OpNot:
		return ^a, true
	case ir.OpCmpEQ:
		return b2i(a == b), true
	case ir.OpCmpNE:
		return b2i(a != b), true
	case ir.OpCmpLT:
		return b2i(a < b), true
	case ir.OpCmpLE:
		return b2i(a <= b), true
	case ir.OpCmpGT:
		return b2i(a > b), true
	case ir.OpCmpGE:
		return b2i(a >= b), true
	}
	return 0, false
}
