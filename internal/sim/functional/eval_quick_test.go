package functional

import (
	"testing"
	"testing/quick"

	"repro/internal/ir"
)

// Property: every comparison result is 0 or 1 for arbitrary operands.
func TestQuickCompareResultsAreBoolean(t *testing.T) {
	cmps := []ir.Op{ir.OpCmpEQ, ir.OpCmpNE, ir.OpCmpLT, ir.OpCmpLE, ir.OpCmpGT, ir.OpCmpGE}
	f := func(a, b int64) bool {
		for _, op := range cmps {
			v, ok := EvalPure(op, a, b, 0)
			if !ok || (v != 0 && v != 1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a comparison and its negation always disagree.
func TestQuickNegatedComparesAreComplementary(t *testing.T) {
	cmps := []ir.Op{ir.OpCmpEQ, ir.OpCmpLT, ir.OpCmpLE}
	f := func(a, b int64) bool {
		for _, op := range cmps {
			neg, _ := ir.NegateCompare(op)
			v1, _ := EvalPure(op, a, b, 0)
			v2, _ := EvalPure(neg, a, b, 0)
			if v1 == v2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the division identity a == b*(a/b) + (a%b) holds whenever
// b != 0 (Go semantics), and both yield 0 when b == 0 (architectural
// choice).
func TestQuickDivRemIdentity(t *testing.T) {
	f := func(a, b int64) bool {
		q, ok1 := EvalPure(ir.OpDiv, a, b, 0)
		r, ok2 := EvalPure(ir.OpRem, a, b, 0)
		if !ok1 || !ok2 {
			return false
		}
		if b == 0 {
			return q == 0 && r == 0
		}
		if a == -9223372036854775808 && b == -1 {
			return true // wraps, like Go's quotient overflow panic avoided upstream
		}
		return a == b*q+r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: add/sub and neg are mutually inverse; not is an
// involution.
func TestQuickArithmeticInverses(t *testing.T) {
	f := func(a, b int64) bool {
		s, _ := EvalPure(ir.OpAdd, a, b, 0)
		d, _ := EvalPure(ir.OpSub, s, b, 0)
		if d != a {
			return false
		}
		n, _ := EvalPure(ir.OpNeg, a, 0, 0)
		nn, _ := EvalPure(ir.OpNeg, n, 0, 0)
		if nn != a {
			return false
		}
		c, _ := EvalPure(ir.OpNot, a, 0, 0)
		cc, _ := EvalPure(ir.OpNot, c, 0, 0)
		return cc == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: commutative opcodes commute.
func TestQuickCommutativity(t *testing.T) {
	ops := []ir.Op{ir.OpAdd, ir.OpMul, ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpCmpEQ, ir.OpCmpNE}
	f := func(a, b int64) bool {
		for _, op := range ops {
			x, _ := EvalPure(op, a, b, 0)
			y, _ := EvalPure(op, b, a, 0)
			if x != y {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: shift amounts are taken mod 64 (never panic, stable
// semantics for huge shift operands).
func TestQuickShiftsMod64(t *testing.T) {
	f := func(a, b int64) bool {
		l1, _ := EvalPure(ir.OpShl, a, b, 0)
		l2, _ := EvalPure(ir.OpShl, a, b&63, 0)
		r1, _ := EvalPure(ir.OpShr, a, b, 0)
		r2, _ := EvalPure(ir.OpShr, a, b&63, 0)
		return l1 == l2 && r1 == r2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
