package fuzz

import (
	"fmt"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/lang"
	"repro/internal/sim/functional"
)

// DefaultMaxSteps is the functional-simulator fuel per run. Generated
// programs always terminate well under it; arbitrary fuzz inputs that
// exceed it are skipped, not failed.
const DefaultMaxSteps = 2_000_000

// Variant is one compilation configuration the oracle compares
// against the BB baseline.
type Variant struct {
	Name string
	Opts compiler.Options
}

// Variants enumerates the differential test matrix for the given
// orderings: each ordering plain and with register allocation (plus
// reverse if-conversion), and — for the convergent orderings — with
// head duplication disabled, since head duplication is the transform
// the paper adds on top of classical if-conversion.
func Variants(orderings []compiler.Ordering) []Variant {
	var vs []Variant
	for _, ord := range orderings {
		vs = append(vs, Variant{
			Name: string(ord),
			Opts: compiler.Options{Ordering: ord},
		})
		vs = append(vs, Variant{
			Name: string(ord) + "+ra",
			Opts: compiler.Options{Ordering: ord, RegAlloc: true},
		})
		if ord == compiler.OrderIUPthenO || ord == compiler.OrderIUPO1 {
			vs = append(vs, Variant{
				Name: string(ord) + "-hd",
				Opts: compiler.Options{Ordering: ord,
					CoreTweaks: compiler.CoreTweaks{NoHeadDup: true}},
			})
		}
	}
	return vs
}

// Mismatch is one variant that disagreed with the baseline.
type Mismatch struct {
	Variant string
	Reason  string
}

func (m Mismatch) String() string { return m.Variant + ": " + m.Reason }

// Report is the oracle's verdict on one program.
type Report struct {
	// Skipped means the input is uninteresting: the BB baseline
	// failed to parse, compile, or run (e.g. fuel exhausted), so
	// there is nothing to compare against.
	Skipped    bool
	SkipReason string
	// Mismatches lists variants whose behaviour differed from the
	// baseline — each one is a miscompilation (or a crash) worth
	// shrinking. Empty on agreement.
	Mismatches []Mismatch
	// Degraded accumulates per-function degradations across all
	// variants: the pipeline recovered, but a phase failed on this
	// input and should be investigated.
	Degraded []core.Degradation
	// Runs counts baseline executions compared (one per arg vector).
	Runs int
}

// Failed reports whether the program must be shrunk and investigated.
func (r Report) Failed() bool { return len(r.Mismatches) > 0 }

// argVectors are the measurement inputs; each is adapted to main's
// arity. Small values keep loop trip counts inside the fuel budget,
// the larger ones exercise deeper iteration.
var argVectors = [][]int64{
	{0, 0, 0},
	{1, 2, 3},
	{7, 13, 5},
	{64, 3, 9},
}

// adaptArgs truncates or zero-pads each measurement vector to main's
// arity.
func adaptArgs(arity int) [][]int64 {
	out := make([][]int64, len(argVectors))
	for i, base := range argVectors {
		args := make([]int64, arity)
		copy(args, base)
		out[i] = args
	}
	return out
}

type runOutcome struct {
	result int64
	output []int64
	mem    []int64
	err    error
}

// execute compiles src under opts and runs main once per arg vector.
// A compiler panic is captured and returned as an error (the pipeline
// degrades per function, but a panic escaping the driver is itself a
// bug the fuzzer must surface, not crash on).
func execute(src string, opts compiler.Options, arity int, maxSteps int64) (outs []runOutcome, degraded []core.Degradation, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("compiler panic: %v", rec)
		}
	}()
	res, err := compiler.Compile(src, opts)
	if err != nil {
		return nil, nil, err
	}
	for _, args := range adaptArgs(arity) {
		m := functional.New(res.Prog)
		m.MaxSteps = maxSteps
		v, rerr := m.Run("main", args...)
		outs = append(outs, runOutcome{result: v, output: m.Output, mem: m.Mem, err: rerr})
	}
	return outs, res.Degraded, nil
}

// Diff runs the differential oracle on one tl program: compile under
// the BB baseline and every variant, run each on the functional
// simulator, and demand identical results, print output, and memory
// (up to the baseline's memory size — register spilling appends spill
// slots beyond it). maxSteps <= 0 selects DefaultMaxSteps; orderings
// nil selects all five.
func Diff(src string, maxSteps int64, orderings []compiler.Ordering) Report {
	if maxSteps <= 0 {
		maxSteps = DefaultMaxSteps
	}
	if orderings == nil {
		orderings = compiler.Orderings
	}
	var rep Report

	// The input must define main; its arity sizes the arg vectors.
	file, err := lang.Parse(src)
	if err != nil {
		return skip(fmt.Sprintf("parse: %v", err))
	}
	arity := -1
	for _, fn := range file.Funcs {
		if fn.Name == "main" {
			arity = len(fn.Params)
		}
	}
	if arity < 0 {
		return skip("no main function")
	}

	base, deg, err := execute(src, compiler.Options{Ordering: compiler.OrderBB}, arity, maxSteps)
	if err != nil {
		return skip(fmt.Sprintf("baseline: %v", err))
	}
	rep.Degraded = append(rep.Degraded, deg...)
	for _, o := range base {
		if o.err != nil {
			return skip(fmt.Sprintf("baseline run: %v", o.err))
		}
	}
	rep.Runs = len(base)
	baseMem := 0
	if len(base) > 0 {
		baseMem = len(base[0].mem)
	}

	for _, v := range Variants(orderings) {
		if v.Opts.Ordering == compiler.OrderBB && v.Name == string(compiler.OrderBB) {
			continue // identical to the baseline compile
		}
		outs, deg, err := execute(src, v.Opts, arity, maxSteps)
		rep.Degraded = append(rep.Degraded, deg...)
		if err != nil {
			rep.Mismatches = append(rep.Mismatches, Mismatch{v.Name,
				fmt.Sprintf("compile failed where baseline succeeded: %v", err)})
			continue
		}
		vectors := adaptArgs(arity)
		for i, o := range outs {
			if r := compare(base[i], o, baseMem); r != "" {
				rep.Mismatches = append(rep.Mismatches, Mismatch{v.Name,
					fmt.Sprintf("args %v: %s", vectors[i], r)})
				break
			}
		}
	}
	return rep
}

func skip(reason string) Report { return Report{Skipped: true, SkipReason: reason} }

// compare checks one variant run against the baseline run. Memory is
// compared only over the baseline's size: register allocation appends
// spill slots past it, and those are private to the variant.
func compare(want, got runOutcome, baseMem int) string {
	if got.err != nil {
		return fmt.Sprintf("run failed where baseline succeeded: %v", got.err)
	}
	if got.result != want.result {
		return fmt.Sprintf("result %d, baseline %d", got.result, want.result)
	}
	if len(got.output) != len(want.output) {
		return fmt.Sprintf("printed %d values, baseline %d", len(got.output), len(want.output))
	}
	for i := range want.output {
		if got.output[i] != want.output[i] {
			return fmt.Sprintf("output[%d] = %d, baseline %d", i, got.output[i], want.output[i])
		}
	}
	if len(got.mem) < baseMem {
		return fmt.Sprintf("memory shrank to %d words, baseline %d", len(got.mem), baseMem)
	}
	for i := 0; i < baseMem; i++ {
		if got.mem[i] != want.mem[i] {
			return fmt.Sprintf("mem[%d] = %d, baseline %d", i, got.mem[i], want.mem[i])
		}
	}
	return ""
}
