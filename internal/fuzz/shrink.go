package fuzz

import "repro/internal/lang"

// Shrink greedily minimizes src while keep(candidate) stays true,
// calling keep at most budget times (budget <= 0 selects 2000). Each
// round enumerates single edits — drop an array, a function, or a
// statement; replace a compound statement with its body; simplify an
// expression to a literal or an operand — applies each to a fresh
// clone, and accepts the first strictly smaller candidate that still
// satisfies keep. Rounds repeat until a fixpoint or the budget runs
// out. Invalid candidates (e.g. a deleted function something still
// calls) are rejected by keep itself, since a program that no longer
// compiles cannot reproduce a differential failure.
func Shrink(src string, keep func(string) bool, budget int) string {
	if budget <= 0 {
		budget = 2000
	}
	cur := src
	for budget > 0 {
		improved := false
		for target := 0; budget > 0; target++ {
			file, err := lang.Parse(cur)
			if err != nil {
				return cur // shouldn't happen: cur always came from keep
			}
			cand, ok := applyEdit(file, target)
			if !ok {
				break // no edit with this index exists: round over
			}
			if len(cand) >= len(cur) || cand == cur {
				continue
			}
			budget--
			if keep(cand) {
				cur = cand
				improved = true
				break // restart enumeration on the smaller program
			}
		}
		if !improved {
			return cur
		}
	}
	return cur
}

// applyEdit applies the target-th edit to file (mutating it) and
// returns the re-rendered source. ok is false when fewer than
// target+1 edits exist.
func applyEdit(file *lang.File, target int) (string, bool) {
	e := &editor{target: target}
	e.file(file)
	if !e.applied {
		return "", false
	}
	return lang.FormatFile(file), true
}

// editor numbers edit opportunities in a deterministic DFS order and
// applies the one whose number matches target.
type editor struct {
	target  int
	next    int
	applied bool
}

// hit reports whether the current opportunity is the chosen one.
func (e *editor) hit() bool {
	if e.applied {
		return false
	}
	if e.next == e.target {
		e.next++
		e.applied = true
		return true
	}
	e.next++
	return false
}

func (e *editor) file(f *lang.File) {
	for i := range f.Arrays {
		if e.hit() {
			f.Arrays = append(f.Arrays[:i], f.Arrays[i+1:]...)
			return
		}
	}
	for i := range f.Funcs {
		if e.hit() {
			f.Funcs = append(f.Funcs[:i], f.Funcs[i+1:]...)
			return
		}
	}
	for _, fn := range f.Funcs {
		e.block(fn.Body)
		if e.applied {
			return
		}
	}
}

func (e *editor) block(b *lang.BlockStmt) {
	for i := 0; i < len(b.Stmts); i++ {
		s := b.Stmts[i]
		// Delete the statement.
		if e.hit() {
			b.Stmts = append(b.Stmts[:i], b.Stmts[i+1:]...)
			return
		}
		// Replace a compound statement with its body.
		switch s := s.(type) {
		case *lang.IfStmt:
			if e.hit() {
				b.Stmts = spliceBlock(b.Stmts, i, s.Then)
				return
			}
			if s.Else != nil && e.hit() {
				b.Stmts[i] = s.Else
				return
			}
		case *lang.WhileStmt:
			if e.hit() {
				b.Stmts = spliceBlock(b.Stmts, i, s.Body)
				return
			}
		case *lang.ForStmt:
			if e.hit() {
				repl := &lang.BlockStmt{}
				if s.Init != nil {
					repl.Stmts = append(repl.Stmts, s.Init)
				}
				repl.Stmts = append(repl.Stmts, s.Body.Stmts...)
				b.Stmts = spliceBlock(b.Stmts, i, repl)
				return
			}
		case *lang.BlockStmt:
			if e.hit() {
				b.Stmts = spliceBlock(b.Stmts, i, s)
				return
			}
		}
		e.stmt(s)
		if e.applied {
			return
		}
	}
}

func spliceBlock(stmts []lang.Stmt, i int, body *lang.BlockStmt) []lang.Stmt {
	out := make([]lang.Stmt, 0, len(stmts)-1+len(body.Stmts))
	out = append(out, stmts[:i]...)
	out = append(out, body.Stmts...)
	out = append(out, stmts[i+1:]...)
	return out
}

func (e *editor) stmt(s lang.Stmt) {
	switch s := s.(type) {
	case *lang.BlockStmt:
		e.block(s)
	case *lang.VarStmt:
		if s.Init != nil {
			e.expr(&s.Init)
		}
	case *lang.AssignStmt:
		if s.Index != nil {
			e.expr(&s.Index)
		}
		if !e.applied {
			e.expr(&s.Value)
		}
	case *lang.IfStmt:
		e.expr(&s.Cond)
		if !e.applied {
			e.block(s.Then)
		}
		if !e.applied && s.Else != nil {
			e.stmt(s.Else)
		}
	case *lang.WhileStmt:
		e.expr(&s.Cond)
		if !e.applied {
			e.block(s.Body)
		}
	case *lang.ForStmt:
		if s.Init != nil {
			e.stmt(s.Init)
		}
		if !e.applied && s.Cond != nil {
			e.expr(&s.Cond)
		}
		if !e.applied && s.Post != nil {
			e.stmt(s.Post)
		}
		if !e.applied {
			e.block(s.Body)
		}
	case *lang.ReturnStmt:
		if s.Value != nil {
			e.expr(&s.Value)
		}
	case *lang.ExprStmt:
		e.expr(&s.X)
	}
}

// expr enumerates expression simplifications at the slot: replace
// with 0, or with an operand/subexpression; then recurse.
func (e *editor) expr(slot *lang.Expr) {
	switch x := (*slot).(type) {
	case *lang.IntLit, *lang.Ident, nil:
		return // already minimal
	case *lang.BinaryExpr:
		if e.hit() {
			*slot = x.X
			return
		}
		if e.hit() {
			*slot = x.Y
			return
		}
		if e.hit() {
			*slot = &lang.IntLit{Value: 0, Line: x.Line}
			return
		}
		e.expr(&x.X)
		if !e.applied {
			e.expr(&x.Y)
		}
	case *lang.UnaryExpr:
		if e.hit() {
			*slot = x.X
			return
		}
		e.expr(&x.X)
	case *lang.IndexExpr:
		if e.hit() {
			*slot = &lang.IntLit{Value: 0, Line: x.Line}
			return
		}
		e.expr(&x.Index)
	case *lang.CallExpr:
		if e.hit() {
			*slot = &lang.IntLit{Value: 0, Line: x.Line}
			return
		}
		for i := range x.Args {
			e.expr(&x.Args[i])
			if e.applied {
				return
			}
		}
	}
}
