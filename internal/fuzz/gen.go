// Package fuzz is the differential fuzzing harness for the compiler
// pipeline: a seeded random tl program generator, an oracle that
// compiles each program under every phase ordering and demands
// behaviour identical to the basic-block baseline on the functional
// simulator, and a shrinker that minimizes failing programs.
package fuzz

import (
	"math/rand"

	"repro/internal/lang"
)

// GenConfig bounds the shape of generated programs. The zero value
// selects the defaults.
type GenConfig struct {
	// MaxFuncs bounds helper functions besides main (default 2).
	MaxFuncs int
	// MaxArrays bounds global arrays (default 2).
	MaxArrays int
	// MaxDepth bounds statement nesting (default 2: loops nest two
	// deep, which already exercises the paper's kernel shapes —
	// deeper programs make formation cost superlinear).
	MaxDepth int
	// MaxStmts bounds statements per block (default 4).
	MaxStmts int
	// MaxExprDepth bounds expression nesting (default 3).
	MaxExprDepth int
}

func (c GenConfig) withDefaults() GenConfig {
	if c.MaxFuncs == 0 {
		c.MaxFuncs = 2
	}
	if c.MaxArrays == 0 {
		c.MaxArrays = 2
	}
	if c.MaxDepth == 0 {
		c.MaxDepth = 2
	}
	if c.MaxStmts == 0 {
		c.MaxStmts = 4
	}
	if c.MaxExprDepth == 0 {
		c.MaxExprDepth = 3
	}
	return c
}

// Generate returns a deterministic random tl program for the seed:
// same seed, same source. Programs are valid (they parse and check)
// and always terminate: every loop is either a bounded down-counter
// that decrements before its body runs or a counted for-loop whose
// induction variable is never otherwise assigned, and calls only
// reach functions defined earlier in the file (no recursion). Array
// stores mask their index to the power-of-two array size, so no
// generated store is out of bounds.
func Generate(seed int64, cfg GenConfig) string {
	cfg = cfg.withDefaults()
	g := &generator{rng: rand.New(rand.NewSource(seed)), cfg: cfg}
	f := g.file()
	return lang.FormatFile(f)
}

type arrayInfo struct {
	name string
	size int64
}

type funcInfo struct {
	name  string
	arity int
}

type generator struct {
	rng *rand.Rand
	cfg GenConfig

	arrays []arrayInfo
	funcs  []funcInfo // callable (defined earlier)

	// Per-function state.
	varCnt     int
	vars       []string // readable in scope
	assignable []string // assignable subset (loop counters excluded)
	loopDepth  int
}

func (g *generator) intn(n int) int { return g.rng.Intn(n) }

// chance returns true with probability num/den.
func (g *generator) chance(num, den int) bool { return g.rng.Intn(den) < num }

func (g *generator) file() *lang.File {
	f := &lang.File{}
	for i, n := 0, g.intn(g.cfg.MaxArrays+1); i < n; i++ {
		size := int64(8 << g.intn(2)) // 8 or 16: power of two for index masking
		a := &lang.ArrayDecl{Name: g.arrayName(i), Size: size}
		if g.chance(1, 2) {
			for j, k := 0, 1+g.intn(int(size)); j < k; j++ {
				a.Init = append(a.Init, int64(g.intn(41)-20))
			}
		}
		f.Arrays = append(f.Arrays, a)
		g.arrays = append(g.arrays, arrayInfo{a.Name, size})
	}
	helpers := g.intn(g.cfg.MaxFuncs + 1)
	for i := 0; i < helpers; i++ {
		fn := g.function(g.funcName(i), 1+g.intn(2))
		f.Funcs = append(f.Funcs, fn)
		g.funcs = append(g.funcs, funcInfo{fn.Name, len(fn.Params)})
	}
	f.Funcs = append(f.Funcs, g.function("main", 2))
	return f
}

func (g *generator) arrayName(i int) string { return "g" + string(rune('0'+i)) }
func (g *generator) funcName(i int) string  { return "f" + string(rune('0'+i)) }

func (g *generator) function(name string, arity int) *lang.FuncDecl {
	g.varCnt = 0
	g.vars = g.vars[:0]
	g.assignable = g.assignable[:0]
	g.loopDepth = 0

	fn := &lang.FuncDecl{Name: name}
	params := []string{"n", "m", "k"}
	for i := 0; i < arity; i++ {
		fn.Params = append(fn.Params, params[i])
		g.vars = append(g.vars, params[i])
		g.assignable = append(g.assignable, params[i])
	}
	fn.Body = g.block(0)
	fn.Body.Stmts = append(fn.Body.Stmts, &lang.ReturnStmt{Value: g.expr(0)})
	return fn
}

func (g *generator) freshVar(prefix string) string {
	g.varCnt++
	return prefix + itoa(g.varCnt)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// block generates a braced statement list, restoring the variable
// scope on exit so later statements never reference block locals.
func (g *generator) block(depth int) *lang.BlockStmt {
	nv, na := len(g.vars), len(g.assignable)
	b := &lang.BlockStmt{}
	for i, n := 0, 1+g.intn(g.cfg.MaxStmts); i < n; i++ {
		if s := g.stmt(depth); s != nil {
			b.Stmts = append(b.Stmts, s)
		}
	}
	g.vars = g.vars[:nv]
	g.assignable = g.assignable[:na]
	return b
}

func (g *generator) stmt(depth int) lang.Stmt {
	for {
		switch g.intn(12) {
		case 0, 1: // var declaration
			name := g.freshVar("v")
			s := &lang.VarStmt{Name: name, Init: g.expr(0)}
			g.vars = append(g.vars, name)
			g.assignable = append(g.assignable, name)
			return s
		case 2, 3: // scalar assignment
			if len(g.assignable) == 0 {
				continue
			}
			return &lang.AssignStmt{
				Name:  g.assignable[g.intn(len(g.assignable))],
				Value: g.expr(0),
			}
		case 4: // array store (index masked to size: never out of bounds)
			if len(g.arrays) == 0 {
				continue
			}
			a := g.arrays[g.intn(len(g.arrays))]
			return &lang.AssignStmt{
				Name:  a.name,
				Index: g.maskedIndex(a.size),
				Value: g.expr(0),
			}
		case 5: // print
			return &lang.ExprStmt{X: &lang.CallExpr{
				Name: lang.PrintBuiltin,
				Args: []lang.Expr{g.expr(0)},
			}}
		case 6: // if / if-else
			if depth >= g.cfg.MaxDepth {
				continue
			}
			s := &lang.IfStmt{Cond: g.expr(0), Then: g.block(depth + 1)}
			if g.chance(1, 2) {
				s.Else = g.block(depth + 1)
			}
			return s
		case 7: // rarely-taken side path: (expr & 31) == 0
			if depth >= g.cfg.MaxDepth {
				continue
			}
			cond := &lang.BinaryExpr{
				Op: lang.EqEq,
				X:  &lang.BinaryExpr{Op: lang.Amp, X: g.expr(1), Y: &lang.IntLit{Value: 31}},
				Y:  &lang.IntLit{Value: 0},
			}
			return &lang.IfStmt{Cond: cond, Then: g.block(depth + 1)}
		case 8: // bounded down-counter while loop
			if depth >= g.cfg.MaxDepth {
				continue
			}
			return g.whileLoop(depth)
		case 9: // counted for loop (front-unroll eligible when clean)
			if depth >= g.cfg.MaxDepth {
				continue
			}
			return g.forLoop(depth)
		case 10: // call for effect
			if len(g.funcs) == 0 || g.loopDepth > 1 {
				continue
			}
			return &lang.ExprStmt{X: g.call(1)}
		case 11: // break/continue inside a loop (side exits)
			if g.loopDepth == 0 || !g.chance(1, 3) {
				continue
			}
			if g.chance(1, 2) {
				return &lang.BreakStmt{}
			}
			return &lang.ContinueStmt{}
		}
	}
}

// whileLoop emits the canonical terminating shape
//
//	var tN = K;
//	while (tN > 0) { tN = tN - 1; ...body... }
//
// The decrement comes first so a generated continue cannot skip it,
// and tN is readable but never assignable by nested statements.
func (g *generator) whileLoop(depth int) lang.Stmt {
	t := g.freshVar("t")
	bound := int64(1 + g.intn(5))
	decl := &lang.VarStmt{Name: t, Init: &lang.IntLit{Value: bound}}
	g.vars = append(g.vars, t) // readable, not assignable

	g.loopDepth++
	body := g.block(depth + 1)
	g.loopDepth--
	body.Stmts = append([]lang.Stmt{&lang.AssignStmt{
		Name: t,
		Value: &lang.BinaryExpr{Op: lang.Minus,
			X: &lang.Ident{Name: t}, Y: &lang.IntLit{Value: 1}},
	}}, body.Stmts...)

	loop := &lang.WhileStmt{
		Cond: &lang.BinaryExpr{Op: lang.Gt,
			X: &lang.Ident{Name: t}, Y: &lang.IntLit{Value: 0}},
		Body: body,
	}
	return &lang.BlockStmt{Stmts: []lang.Stmt{decl, loop}}
}

// forLoop emits for (var iN = 0; iN < K; iN = iN + 1) { body } with
// iN protected from assignment, so the loop always terminates and is
// front-unroll eligible when the body stays clean.
func (g *generator) forLoop(depth int) lang.Stmt {
	iv := g.freshVar("i")
	bound := int64(1 + g.intn(5))
	g.vars = append(g.vars, iv) // readable, not assignable

	g.loopDepth++
	body := g.block(depth + 1)
	g.loopDepth--

	return &lang.ForStmt{
		Init: &lang.VarStmt{Name: iv, Init: &lang.IntLit{Value: 0}},
		Cond: &lang.BinaryExpr{Op: lang.Lt,
			X: &lang.Ident{Name: iv}, Y: &lang.IntLit{Value: bound}},
		Post: &lang.AssignStmt{Name: iv,
			Value: &lang.BinaryExpr{Op: lang.Plus,
				X: &lang.Ident{Name: iv}, Y: &lang.IntLit{Value: 1}}},
		Body: body,
	}
}

// maskedIndex builds expr & (size-1); with size a power of two the
// result is always in [0, size), so stores cannot trap.
func (g *generator) maskedIndex(size int64) lang.Expr {
	return &lang.BinaryExpr{Op: lang.Amp, X: g.expr(1), Y: &lang.IntLit{Value: size - 1}}
}

var binOps = []lang.Kind{
	lang.Plus, lang.Minus, lang.Star, lang.Slash, lang.Percent,
	lang.Amp, lang.Pipe, lang.Caret, lang.Shl, lang.Shr,
	lang.EqEq, lang.NotEq, lang.Lt, lang.LtEq, lang.Gt, lang.GtEq,
	lang.AndAnd, lang.OrOr,
}

var unOps = []lang.Kind{lang.Minus, lang.Not, lang.Tilde}

var litPool = []int64{0, 1, 2, 3, 5, 7, 8, 15, 16, 31, 63, -1, -2, -7}

func (g *generator) expr(depth int) lang.Expr {
	if depth >= g.cfg.MaxExprDepth || g.chance(2, 5) {
		return g.leaf()
	}
	switch g.intn(10) {
	case 0, 1: // unary
		return &lang.UnaryExpr{Op: unOps[g.intn(len(unOps))], X: g.expr(depth + 1)}
	case 2: // call
		if len(g.funcs) > 0 && g.loopDepth <= 1 {
			return g.call(depth + 1)
		}
		fallthrough
	default: // binary
		return &lang.BinaryExpr{
			Op: binOps[g.intn(len(binOps))],
			X:  g.expr(depth + 1),
			Y:  g.expr(depth + 1),
		}
	}
}

func (g *generator) leaf() lang.Expr {
	switch g.intn(5) {
	case 0, 1:
		if len(g.vars) > 0 {
			return &lang.Ident{Name: g.vars[g.intn(len(g.vars))]}
		}
	case 2:
		if len(g.arrays) > 0 {
			a := g.arrays[g.intn(len(g.arrays))]
			return &lang.IndexExpr{Name: a.name, Index: g.maskedIndex(a.size)}
		}
	}
	if g.chance(1, 4) {
		return &lang.IntLit{Value: int64(g.intn(201) - 100)}
	}
	return &lang.IntLit{Value: litPool[g.intn(len(litPool))]}
}

func (g *generator) call(depth int) lang.Expr {
	fi := g.funcs[g.intn(len(g.funcs))]
	c := &lang.CallExpr{Name: fi.name}
	for i := 0; i < fi.arity; i++ {
		c.Args = append(c.Args, g.expr(depth+1))
	}
	return c
}
