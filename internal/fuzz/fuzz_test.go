package fuzz

import (
	"strings"
	"testing"

	"repro/internal/compiler"
	"repro/internal/lang"
)

func TestGeneratorDeterministic(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		a := Generate(seed, GenConfig{})
		b := Generate(seed, GenConfig{})
		if a != b {
			t.Fatalf("seed %d: generator is not deterministic", seed)
		}
	}
	if Generate(1, GenConfig{}) == Generate(2, GenConfig{}) {
		t.Fatal("distinct seeds produced identical programs")
	}
}

func TestGeneratedProgramsAreValid(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		src := Generate(seed, GenConfig{})
		f, err := lang.Parse(src)
		if err != nil {
			t.Fatalf("seed %d: generated program does not parse: %v\n%s", seed, err, src)
		}
		if err := lang.Check(f); err != nil {
			t.Fatalf("seed %d: generated program does not check: %v\n%s", seed, err, src)
		}
	}
}

func TestGeneratedProgramsRoundTrip(t *testing.T) {
	// FormatFile(Parse(FormatFile(ast))) must be stable: the shrinker
	// re-renders after every edit and relies on this.
	for seed := int64(0); seed < 50; seed++ {
		src := Generate(seed, GenConfig{})
		f, err := lang.Parse(src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if again := lang.FormatFile(f); again != src {
			t.Fatalf("seed %d: format round-trip diverged:\n-- first --\n%s\n-- second --\n%s",
				seed, src, again)
		}
	}
}

func TestDifferentialAgreesOnGeneratedPrograms(t *testing.T) {
	n := int64(40)
	if testing.Short() {
		n = 10
	}
	for seed := int64(0); seed < n; seed++ {
		src := Generate(seed, GenConfig{})
		rep := Diff(src, 0, nil)
		if rep.Skipped {
			t.Fatalf("seed %d: generated program skipped (%s)\n%s", seed, rep.SkipReason, src)
		}
		if rep.Failed() {
			min := Shrink(src, func(s string) bool { return Diff(s, 0, nil).Failed() }, 500)
			t.Fatalf("seed %d: differential mismatch %v\nshrunk reproducer:\n%s",
				seed, rep.Mismatches, min)
		}
	}
}

func TestDiffSkipsInvalidInput(t *testing.T) {
	for _, src := range []string{
		"",
		"not a program",
		"func f() { return 0; }",        // no main
		"func main( { return 0; }",      // parse error
		"func main() { return x; }",     // check error
		"func main() { while (1) { } }", // fuel exhaustion
	} {
		rep := Diff(src, 100_000, nil)
		if !rep.Skipped {
			t.Fatalf("input %q should be skipped, got %+v", src, rep)
		}
		if rep.Failed() {
			t.Fatalf("input %q produced mismatches: %v", src, rep.Mismatches)
		}
	}
}

func TestShrinkMinimizes(t *testing.T) {
	src := Generate(7, GenConfig{})
	// Artificial predicate: the program still prints something. The
	// shrinker should strip it down while preserving a print call.
	keep := func(s string) bool {
		f, err := lang.Parse(s)
		if err != nil || lang.Check(f) != nil {
			return false
		}
		return strings.Contains(s, "print")
	}
	if !keep(src) {
		t.Skip("seed program has no print; predicate vacuous")
	}
	min := Shrink(src, keep, 1500)
	if !keep(min) {
		t.Fatalf("shrunk program no longer satisfies the predicate:\n%s", min)
	}
	if len(min) > len(src) {
		t.Fatalf("shrinker grew the program: %d -> %d bytes", len(src), len(min))
	}
	if len(min) > len(src)/2 {
		t.Logf("weak shrink: %d -> %d bytes\n%s", len(src), len(min), min)
	}
}

func TestVariantsMatrix(t *testing.T) {
	vs := Variants(compiler.Orderings)
	names := map[string]bool{}
	for _, v := range vs {
		names[v.Name] = true
	}
	for _, want := range []string{"BB+ra", "UPIO", "UPIO+ra", "IUPO+ra", "(IUP)O-hd", "(IUPO)-hd"} {
		if !names[want] {
			t.Fatalf("variant matrix missing %q: %v", want, names)
		}
	}
}

// FuzzDifferential is the native fuzz target: any input that parses,
// checks, and runs under the BB baseline must behave identically
// under every other phase ordering. The checked-in corpus seeds it
// with generator output.
func FuzzDifferential(f *testing.F) {
	for seed := int64(0); seed < 8; seed++ {
		f.Add(Generate(seed, GenConfig{}))
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<14 {
			t.Skip("oversized input")
		}
		rep := Diff(src, 500_000, nil)
		if rep.Skipped {
			t.Skip(rep.SkipReason)
		}
		if rep.Failed() {
			t.Fatalf("differential mismatch: %v\nprogram:\n%s", rep.Mismatches, src)
		}
	})
}
