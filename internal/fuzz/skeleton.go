package fuzz

import (
	"fmt"

	"repro/internal/compiler"
	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/sim/timing"
)

// DiffSkeleton runs the skeleton-replay differential oracle on one tl
// program: for every forming ordering, compile three ways — plain
// greedy, greedy with trace recording, and skeleton replay driven by
// the recorded trace — and demand that recording never perturbs the
// output and that replay reproduces it exactly: byte-identical IR
// dumps, equal formation statistics, zero fallbacks on a clean
// record, and cycle-identical timing simulation. Any divergence is a
// soundness bug in the two-phase split (the instantiation phase would
// serve different code than the full pipeline).
//
// maxSteps bounds the timing runs (<= 0 selects DefaultMaxSteps);
// orderings nil selects every ordering except BB (which never forms,
// so it has no skeleton to replay).
func DiffSkeleton(src string, maxSteps int64, orderings []compiler.Ordering) Report {
	if maxSteps <= 0 {
		maxSteps = DefaultMaxSteps
	}
	if orderings == nil {
		for _, ord := range compiler.Orderings {
			if ord != compiler.OrderBB {
				orderings = append(orderings, ord)
			}
		}
	}
	var rep Report

	file, err := lang.Parse(src)
	if err != nil {
		return skip(fmt.Sprintf("parse: %v", err))
	}
	if err := lang.Check(file); err != nil {
		return skip(fmt.Sprintf("check: %v", err))
	}
	arity := -1
	for _, fn := range file.Funcs {
		if fn.Name == "main" {
			arity = len(fn.Params)
		}
	}
	if arity < 0 {
		return skip("no main function")
	}

	compiled := 0
	for _, ord := range orderings {
		name := string(ord) + "+skeleton"
		opts := compiler.Options{Ordering: ord}

		full, err := safeCompile(src, opts)
		if err != nil {
			// Nothing to compare for this ordering; the plain
			// differential oracle owns compile-failure coverage.
			continue
		}
		compiled++
		wantIR := ir.FormatProgram(full.Prog)

		recOpts := opts
		recOpts.RecordFormTrace = true
		rec, err := safeCompile(src, recOpts)
		if err != nil {
			rep.Mismatches = append(rep.Mismatches, Mismatch{name,
				fmt.Sprintf("recording compile failed where greedy succeeded: %v", err)})
			continue
		}
		if rec.FormTrace == nil {
			rep.Mismatches = append(rep.Mismatches, Mismatch{name, "no trace recorded"})
			continue
		}
		if ir.FormatProgram(rec.Prog) != wantIR {
			rep.Mismatches = append(rep.Mismatches, Mismatch{name,
				"recording perturbed formation output"})
			continue
		}

		repOpts := opts
		repOpts.FormTrace = rec.FormTrace
		replayed, err := safeCompile(src, repOpts)
		if err != nil {
			rep.Mismatches = append(rep.Mismatches, Mismatch{name,
				fmt.Sprintf("replay compile failed where greedy succeeded: %v", err)})
			continue
		}
		rep.Degraded = append(rep.Degraded, replayed.Degraded...)
		if got := ir.FormatProgram(replayed.Prog); got != wantIR {
			rep.Mismatches = append(rep.Mismatches, Mismatch{name,
				"replayed IR differs from full greedy formation"})
			continue
		}
		if replayed.FormStats != full.FormStats {
			rep.Mismatches = append(rep.Mismatches, Mismatch{name,
				fmt.Sprintf("replay stats %+v, greedy %+v", replayed.FormStats, full.FormStats)})
			continue
		}
		// Same parameters, same input: a clean recording must replay
		// without a single precondition miss. Functions that degraded
		// during recording legitimately have no trace entry and fall
		// back, so only a fully clean record asserts zero.
		if len(rec.Degraded) == 0 && replayed.Replay.Fallbacks != 0 {
			rep.Mismatches = append(rep.Mismatches, Mismatch{name,
				fmt.Sprintf("replay fell back %d times under identical parameters", replayed.Replay.Fallbacks)})
			continue
		}

		// Cycle-identical timing: the instantiated program must not
		// just compute the same values but schedule identically.
		if r := compareCycles(full.Prog, replayed.Prog, arity, maxSteps); r != "" {
			rep.Mismatches = append(rep.Mismatches, Mismatch{name, r})
		}
	}
	if compiled == 0 {
		return skip("no ordering compiled the input")
	}
	rep.Runs = compiled * len(argVectors)
	return rep
}

// safeCompile is compiler.Compile with panics captured as errors,
// matching execute's contract: the oracle surfaces crashes as
// findings, never dies on them.
func safeCompile(src string, opts compiler.Options) (res *compiler.Result, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("compiler panic: %v", rec)
		}
	}()
	return compiler.Compile(src, opts)
}

// compareCycles runs both programs on the timing simulator over the
// standard arg vectors and demands identical results and cycle
// counts. An empty string means agreement.
func compareCycles(want, got *ir.Program, arity int, maxSteps int64) string {
	cfg := timing.DefaultConfig()
	cfg.MaxCycles = maxSteps * 16
	for _, args := range adaptArgs(arity) {
		wm := timing.New(want, cfg)
		wv, werr := wm.Run("main", args...)
		gm := timing.New(got, cfg)
		gv, gerr := gm.Run("main", args...)
		if (werr == nil) != (gerr == nil) {
			return fmt.Sprintf("args %v: timing run error mismatch: greedy %v, replay %v", args, werr, gerr)
		}
		if werr != nil {
			continue // both exhausted the budget identically
		}
		if gv != wv {
			return fmt.Sprintf("args %v: result %d, greedy %d", args, gv, wv)
		}
		if gm.Stats.Cycles != wm.Stats.Cycles {
			return fmt.Sprintf("args %v: %d cycles, greedy %d", args, gm.Stats.Cycles, wm.Stats.Cycles)
		}
	}
	return ""
}
