package fuzz

import "testing"

// The acceptance bar for the two-phase formation split: across
// generator seeds 1–8, skeleton replay must be indistinguishable from
// full greedy formation — byte-identical IR, equal stats, identical
// simulated cycles (see DiffSkeleton).
func TestSkeletonDifferentialAgreesOnGeneratedPrograms(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		src := Generate(seed, GenConfig{})
		rep := DiffSkeleton(src, 0, nil)
		if rep.Skipped {
			t.Fatalf("seed %d: generated program skipped (%s)\n%s", seed, rep.SkipReason, src)
		}
		if rep.Failed() {
			min := Shrink(src, func(s string) bool { return DiffSkeleton(s, 0, nil).Failed() }, 500)
			t.Fatalf("seed %d: skeleton differential mismatch %v\nshrunk reproducer:\n%s",
				seed, rep.Mismatches, min)
		}
	}
}

// FuzzSkeletonDifferential is the native fuzz target for the replay
// oracle: any input that compiles under a forming ordering must
// produce byte-identical code whether formation ran greedily or via
// skeleton replay. Shares the checked-in corpus with FuzzDifferential
// through the generator seeds.
func FuzzSkeletonDifferential(f *testing.F) {
	for seed := int64(1); seed <= 8; seed++ {
		f.Add(Generate(seed, GenConfig{}))
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<14 {
			t.Skip("oversized input")
		}
		rep := DiffSkeleton(src, 500_000, nil)
		if rep.Skipped {
			t.Skip(rep.SkipReason)
		}
		if rep.Failed() {
			t.Fatalf("skeleton differential mismatch: %v\nprogram:\n%s", rep.Mismatches, src)
		}
	})
}
